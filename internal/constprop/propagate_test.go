package constprop

import (
	"testing"
	"testing/quick"

	"backdroid/internal/dex"
	"backdroid/internal/ir"
	"backdroid/internal/simtime"
	"backdroid/internal/ssg"
)

var (
	sinkRef = dex.NewMethodRef("javax.crypto.Cipher", "getInstance",
		dex.T("javax.crypto.Cipher"), dex.StringT)
	hostM = dex.NewMethodRef("com.t.Host", "go", dex.Void)
)

// buildLinearSSG records `r1 = "AES"; sink(r1)` in one method.
func buildLinearSSG() *ssg.Graph {
	g := ssg.New(sinkRef)
	r1 := &ir.Local{Name: "r1", Type: dex.StringT}
	def := &ir.AssignStmt{LHS: r1, RHS: ir.StringConst{V: "AES"}}
	call := &ir.AssignStmt{
		LHS: &ir.Local{Name: "r2"},
		RHS: &ir.InvokeExpr{Kind: ir.KindStatic, Method: sinkRef, Args: []ir.Value{r1}},
	}
	g.AddUnit(hostM, 1, def)
	sinkU := g.AddUnit(hostM, 2, call)
	g.MarkSink(sinkU)
	return g
}

func runOn(t *testing.T, g *ssg.Graph) *Result {
	t.Helper()
	res, err := Run(g, ir.NewProgram(dex.NewFile()), simtime.NewMeter(), Options{SinkParamIndex: 0})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLinearConstant(t *testing.T) {
	res := runOn(t, buildLinearSSG())
	if len(res.SinkValues) != 1 || res.SinkValues[0].String() != `"AES"` {
		t.Errorf("values = %v", res.SinkValues)
	}
}

func TestStaticTrackResolvesField(t *testing.T) {
	g := ssg.New(sinkRef)
	field := dex.NewFieldRef("com.t.Config", "MODE", dex.StringT)
	clinit := dex.NewMethodRef("com.t.Config", "<clinit>", dex.Void)

	// Static track: r0 = "DES"; Config.MODE = r0.
	r0 := &ir.Local{Name: "r0", Type: dex.StringT}
	g.AddStaticUnit(clinit, 0, &ir.AssignStmt{LHS: r0, RHS: ir.StringConst{V: "DES"}})
	g.AddStaticUnit(clinit, 1, &ir.AssignStmt{LHS: &ir.StaticFieldRef{Field: field}, RHS: r0})

	// Main track: m = Config.MODE; sink(m).
	m := &ir.Local{Name: "r1", Type: dex.StringT}
	g.AddUnit(hostM, 0, &ir.AssignStmt{LHS: m, RHS: &ir.StaticFieldRef{Field: field}})
	sinkU := g.AddUnit(hostM, 1, &ir.AssignStmt{
		LHS: &ir.Local{Name: "r2"},
		RHS: &ir.InvokeExpr{Kind: ir.KindStatic, Method: sinkRef, Args: []ir.Value{m}},
	})
	g.MarkSink(sinkU)

	res := runOn(t, g)
	if len(res.SinkValues) != 1 || res.SinkValues[0].String() != `"DES"` {
		t.Errorf("values = %v", res.SinkValues)
	}
}

func TestFrameworkStaticFieldBecomesToken(t *testing.T) {
	g := ssg.New(sinkRef)
	allowAll := dex.NewFieldRef("org.apache.http.conn.ssl.SSLSocketFactory",
		"ALLOW_ALL_HOSTNAME_VERIFIER", dex.ObjectT)
	v := &ir.Local{Name: "r1"}
	g.AddUnit(hostM, 0, &ir.AssignStmt{LHS: v, RHS: &ir.StaticFieldRef{Field: allowAll}})
	sinkU := g.AddUnit(hostM, 1, &ir.AssignStmt{
		LHS: &ir.Local{Name: "r2"},
		RHS: &ir.InvokeExpr{Kind: ir.KindStatic, Method: sinkRef, Args: []ir.Value{v}},
	})
	g.MarkSink(sinkU)
	res := runOn(t, g)
	if len(res.SinkValues) != 1 {
		t.Fatalf("values = %v", res.SinkValues)
	}
	if _, ok := res.SinkValues[0].(Token); !ok {
		t.Errorf("value = %T, want Token", res.SinkValues[0])
	}
}

func TestObjPointsToFields(t *testing.T) {
	g := ssg.New(sinkRef)
	field := dex.NewFieldRef("com.t.Holder", "mode", dex.StringT)
	obj := &ir.Local{Name: "r0", Type: dex.T("com.t.Holder")}
	val := &ir.Local{Name: "r1", Type: dex.StringT}
	out := &ir.Local{Name: "r2", Type: dex.StringT}

	g.AddUnit(hostM, 0, &ir.AssignStmt{LHS: obj, RHS: &ir.NewExpr{Class: "com.t.Holder"}})
	g.AddUnit(hostM, 1, &ir.AssignStmt{LHS: val, RHS: ir.StringConst{V: "AES/ECB/X"}})
	g.AddUnit(hostM, 2, &ir.AssignStmt{LHS: &ir.InstanceFieldRef{Base: obj, Field: field}, RHS: val})
	g.AddUnit(hostM, 3, &ir.AssignStmt{LHS: out, RHS: &ir.InstanceFieldRef{Base: obj, Field: field}})
	sinkU := g.AddUnit(hostM, 4, &ir.AssignStmt{
		LHS: &ir.Local{Name: "r9"},
		RHS: &ir.InvokeExpr{Kind: ir.KindStatic, Method: sinkRef, Args: []ir.Value{out}},
	})
	g.MarkSink(sinkU)

	res := runOn(t, g)
	if len(res.SinkValues) != 1 || res.SinkValues[0].String() != `"AES/ECB/X"` {
		t.Errorf("values = %v", res.SinkValues)
	}
}

func TestPhiMergesValues(t *testing.T) {
	g := ssg.New(sinkRef)
	a := &ir.Local{Name: "a", Type: dex.StringT}
	b := &ir.Local{Name: "b", Type: dex.StringT}
	m := &ir.Local{Name: "m", Type: dex.StringT}
	g.AddUnit(hostM, 0, &ir.AssignStmt{LHS: a, RHS: ir.StringConst{V: "AES"}})
	g.AddUnit(hostM, 1, &ir.AssignStmt{LHS: b, RHS: ir.StringConst{V: "DES"}})
	g.AddUnit(hostM, 2, &ir.AssignStmt{LHS: m, RHS: &ir.PhiExpr{Args: []*ir.Local{a, b}}})
	sinkU := g.AddUnit(hostM, 3, &ir.AssignStmt{
		LHS: &ir.Local{Name: "r9"},
		RHS: &ir.InvokeExpr{Kind: ir.KindStatic, Method: sinkRef, Args: []ir.Value{m}},
	})
	g.MarkSink(sinkU)

	res := runOn(t, g)
	if len(res.SinkValues) != 2 {
		t.Fatalf("values = %v, want both branches", res.SinkValues)
	}
}

func TestApplyBinopArithmetic(t *testing.T) {
	tests := []struct {
		op   string
		l, r Value
		want string
	}{
		{"+", Num{2}, Num{3}, "5"},
		{"-", Num{5}, Num{3}, "2"},
		{"*", Num{4}, Num{3}, "12"},
		{"/", Num{9}, Num{2}, "4"},
		{"%", Num{9}, Num{4}, "1"},
		{"&", Num{6}, Num{3}, "2"},
		{"|", Num{4}, Num{1}, "5"},
		{"^", Num{7}, Num{2}, "5"},
		{"+", Str{"AES/"}, Str{"ECB"}, `"AES/ECB"`},
		{"/", Num{1}, Num{0}, "unknown"},
		{"+", Num{1}, Str{"x"}, "unknown"},
	}
	for _, tt := range tests {
		got := ApplyBinop(tt.op, tt.l, tt.r)
		if got.String() != tt.want {
			t.Errorf("ApplyBinop(%q, %v, %v) = %v, want %v", tt.op, tt.l, tt.r, got, tt.want)
		}
	}
}

func TestFactSetSemantics(t *testing.T) {
	f := NewFact(Str{"a"}, Str{"a"}, Num{1})
	if f.Size() != 2 {
		t.Errorf("size = %d, want 2 (dedup)", f.Size())
	}
	g := NewFact(Null{})
	g.Merge(f)
	if g.Size() != 3 {
		t.Errorf("merged size = %d", g.Size())
	}
	if _, ok := f.Singleton(); ok {
		t.Error("two-value fact is not singleton")
	}
	s := NewFact(Str{"only"})
	if v, ok := s.Singleton(); !ok || v.String() != `"only"` {
		t.Error("singleton lookup failed")
	}
}

func TestFactCapDegradesToUnknown(t *testing.T) {
	f := NewFact()
	for i := 0; i < FactCap+10; i++ {
		f.Add(Num{N: int64(i)})
	}
	if f.Size() != FactCap+1 {
		t.Errorf("size = %d, want cap+unknown = %d", f.Size(), FactCap+1)
	}
	if !f.HasUnknown() {
		t.Error("saturated fact must contain Unknown")
	}
}

func TestFactMergeCommutativeProperty(t *testing.T) {
	mk := func(vals []int16) *Fact {
		f := NewFact()
		for _, v := range vals {
			f.Add(Num{N: int64(v)})
		}
		return f
	}
	prop := func(a, b []int16) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		x := mk(a)
		x.Merge(mk(b))
		y := mk(b)
		y.Merge(mk(a))
		if x.Size() != y.Size() {
			return false
		}
		xs, ys := x.Strings(), y.Strings()
		for i := range xs {
			if xs[i] != ys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStringBuilderModel(t *testing.T) {
	g := ssg.New(sinkRef)
	sb := &ir.Local{Name: "sb", Type: dex.T("java.lang.StringBuilder")}
	part := &ir.Local{Name: "p", Type: dex.StringT}
	out := &ir.Local{Name: "o", Type: dex.StringT}
	appendRef := dex.NewMethodRef("java.lang.StringBuilder", "append",
		dex.T("java.lang.StringBuilder"), dex.StringT)
	toStringRef := dex.NewMethodRef("java.lang.StringBuilder", "toString", dex.StringT)

	g.AddUnit(hostM, 0, &ir.AssignStmt{LHS: sb, RHS: &ir.NewExpr{Class: "java.lang.StringBuilder"}})
	g.AddUnit(hostM, 1, &ir.AssignStmt{LHS: part, RHS: ir.StringConst{V: "AES/"}})
	g.AddUnit(hostM, 2, &ir.InvokeStmt{Invoke: &ir.InvokeExpr{
		Kind: ir.KindVirtual, Base: sb, Method: appendRef, Args: []ir.Value{part}}})
	g.AddUnit(hostM, 3, &ir.AssignStmt{LHS: part, RHS: ir.StringConst{V: "ECB/PKCS5Padding"}})
	g.AddUnit(hostM, 4, &ir.InvokeStmt{Invoke: &ir.InvokeExpr{
		Kind: ir.KindVirtual, Base: sb, Method: appendRef, Args: []ir.Value{part}}})
	g.AddUnit(hostM, 5, &ir.AssignStmt{LHS: out, RHS: &ir.InvokeExpr{
		Kind: ir.KindVirtual, Base: sb, Method: toStringRef}})
	sinkU := g.AddUnit(hostM, 6, &ir.AssignStmt{
		LHS: &ir.Local{Name: "r9"},
		RHS: &ir.InvokeExpr{Kind: ir.KindStatic, Method: sinkRef, Args: []ir.Value{out}},
	})
	g.MarkSink(sinkU)

	res := runOn(t, g)
	if len(res.SinkValues) != 1 || res.SinkValues[0].String() != `"AES/ECB/PKCS5Padding"` {
		t.Errorf("values = %v, want concatenated transformation", res.SinkValues)
	}
}

func TestTimeoutPropagates(t *testing.T) {
	meter := simtime.NewMeter()
	meter.SetBudget(1)
	g := buildLinearSSG()
	if _, err := Run(g, ir.NewProgram(dex.NewFile()), meter, Options{}); err == nil {
		t.Error("over-budget propagation must fail")
	}
}

// TestCanceledMeterAbortsForwardPass pins the cancellation hook in the
// forward pass: a latched meter aborts Run with simtime.ErrCanceled at
// method granularity.
func TestCanceledMeterAbortsForwardPass(t *testing.T) {
	meter := simtime.NewMeter()
	meter.SetCancel(func() bool { return true })
	for meter.Charge(1) == nil {
	}
	_, err := Run(buildLinearSSG(), ir.NewProgram(dex.NewFile()), meter, Options{SinkParamIndex: 0})
	if err != simtime.ErrCanceled {
		t.Fatalf("Run on a canceled meter = %v, want ErrCanceled", err)
	}
}
