// Package ir implements a typed three-address intermediate representation
// modeled on Soot's Jimple/Shimple, plus the translation from dex bytecode.
// BackDroid performs all program-analysis-space work (paper Fig. 3) on this
// IR, while the search space works on the dexdump plaintext.
//
// The statement and expression taxonomy follows the paper's Sec. V: the
// slicer and forward analysis handle DefinitionStmt (AssignStmt,
// IdentityStmt), InvokeStmt and ReturnStmt, and the six expression kinds
// BinopExpr, CastExpr, InvokeExpr, NewExpr, NewArrayExpr and PhiExpr.
package ir

import (
	"fmt"
	"strconv"
	"strings"

	"backdroid/internal/dex"
)

// Value is anything that can appear on either side of an assignment.
type Value interface {
	fmt.Stringer
	value()
}

// Local is a method-local variable (a translated dex register).
type Local struct {
	Name string
	Type dex.TypeDesc
}

func (l *Local) value()         {}
func (l *Local) String() string { return l.Name }

// IntConst is an integer constant.
type IntConst struct{ V int64 }

func (IntConst) value()           {}
func (c IntConst) String() string { return strconv.FormatInt(c.V, 10) }

// StringConst is a string constant.
type StringConst struct{ V string }

func (StringConst) value()           {}
func (c StringConst) String() string { return strconv.Quote(c.V) }

// ClassConst is a class literal (const-class).
type ClassConst struct{ Class string }

func (ClassConst) value()           {}
func (c ClassConst) String() string { return "class " + string(dex.T(c.Class)) }

// NullConst is the null literal.
type NullConst struct{}

func (NullConst) value()         {}
func (NullConst) String() string { return "null" }

// ThisRef is the @this identity value.
type ThisRef struct{ Class string }

func (*ThisRef) value()           {}
func (t *ThisRef) String() string { return "@this: " + t.Class }

// ParamRef is the @parameterN identity value.
type ParamRef struct {
	Index int
	Type  dex.TypeDesc
}

func (*ParamRef) value() {}
func (p *ParamRef) String() string {
	return fmt.Sprintf("@parameter%d: %s", p.Index, p.Type.Human())
}

// InstanceFieldRef is obj.field.
type InstanceFieldRef struct {
	Base  *Local
	Field dex.FieldRef
}

func (*InstanceFieldRef) value() {}
func (f *InstanceFieldRef) String() string {
	return f.Base.Name + "." + f.Field.SootSignature()
}

// StaticFieldRef is a static field access.
type StaticFieldRef struct{ Field dex.FieldRef }

func (*StaticFieldRef) value()           {}
func (f *StaticFieldRef) String() string { return f.Field.SootSignature() }

// ArrayRef is arr[idx].
type ArrayRef struct {
	Base  *Local
	Index Value
}

func (*ArrayRef) value()           {}
func (a *ArrayRef) String() string { return a.Base.Name + "[" + a.Index.String() + "]" }

// BinopExpr is a binary operation (paper expression kind 1 of 6).
type BinopExpr struct {
	Op    string // "+", "-", "*", "/", "%", "&", "|", "^", "==", "!=", "<", ">=", ">", "<=", "instanceof"
	Left  Value
	Right Value
}

func (*BinopExpr) value() {}
func (b *BinopExpr) String() string {
	return b.Left.String() + " " + b.Op + " " + b.Right.String()
}

// CastExpr is (type) value (paper expression kind 2 of 6).
type CastExpr struct {
	Type dex.TypeDesc
	Val  Value
}

func (*CastExpr) value()           {}
func (c *CastExpr) String() string { return "(" + c.Type.Human() + ") " + c.Val.String() }

// InvokeKind distinguishes the dispatch flavors, mirroring Jimple's invoke
// expressions.
type InvokeKind int

// Invoke kinds.
const (
	KindVirtual InvokeKind = iota + 1
	KindSpecial            // constructors, private methods (invoke-direct)
	KindStatic
	KindInterface
	KindSuper
)

var invokeKeywords = map[InvokeKind]string{
	KindVirtual:   "virtualinvoke",
	KindSpecial:   "specialinvoke",
	KindStatic:    "staticinvoke",
	KindInterface: "interfaceinvoke",
	KindSuper:     "specialinvoke",
}

// Keyword returns the Jimple keyword of the invoke kind.
func (k InvokeKind) Keyword() string { return invokeKeywords[k] }

// InvokeExpr is a method invocation (paper expression kind 3 of 6).
type InvokeExpr struct {
	Kind   InvokeKind
	Base   *Local // nil for static invokes
	Method dex.MethodRef
	Args   []Value // declared parameters only; receiver is Base
}

func (*InvokeExpr) value() {}
func (e *InvokeExpr) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	argList := "(" + strings.Join(args, ", ") + ")"
	if e.Base == nil {
		return e.Kind.Keyword() + " " + e.Method.SootSignature() + argList
	}
	return e.Kind.Keyword() + " " + e.Base.Name + "." + e.Method.SootSignature() + argList
}

// NewExpr is object allocation (paper expression kind 4 of 6).
type NewExpr struct{ Class string }

func (*NewExpr) value()           {}
func (n *NewExpr) String() string { return "new " + n.Class }

// NewArrayExpr is array allocation (paper expression kind 5 of 6).
type NewArrayExpr struct {
	Elem dex.TypeDesc
	Size Value
}

func (*NewArrayExpr) value() {}
func (n *NewArrayExpr) String() string {
	return "newarray (" + n.Elem.Human() + ")[" + n.Size.String() + "]"
}

// PhiExpr is an SSA phi node (paper expression kind 6 of 6, from Shimple).
type PhiExpr struct{ Args []*Local }

func (*PhiExpr) value() {}
func (p *PhiExpr) String() string {
	names := make([]string, len(p.Args))
	for i, a := range p.Args {
		names[i] = a.Name
	}
	return "Phi(" + strings.Join(names, ", ") + ")"
}

// LocalsOf returns the locals directly referenced by a value (not
// recursing through field bases' contents, but including them as locals).
func LocalsOf(v Value) []*Local {
	switch t := v.(type) {
	case *Local:
		return []*Local{t}
	case *InstanceFieldRef:
		return []*Local{t.Base}
	case *ArrayRef:
		out := []*Local{t.Base}
		return append(out, LocalsOf(t.Index)...)
	case *BinopExpr:
		return append(LocalsOf(t.Left), LocalsOf(t.Right)...)
	case *CastExpr:
		return LocalsOf(t.Val)
	case *InvokeExpr:
		var out []*Local
		if t.Base != nil {
			out = append(out, t.Base)
		}
		for _, a := range t.Args {
			out = append(out, LocalsOf(a)...)
		}
		return out
	case *NewArrayExpr:
		return LocalsOf(t.Size)
	case *PhiExpr:
		return append([]*Local(nil), t.Args...)
	}
	return nil
}
