package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"backdroid/internal/dex"
)

// diamondBody builds: if (p==0) r=1 else r=2; return r.
func diamondBody(t *testing.T) *Body {
	t.Helper()
	cb := dex.NewClass("com.ssa.D")
	mb := cb.StaticMethod("f", dex.Int, dex.Int)
	p := mb.Param(0)
	r := mb.Reg()
	mb.IfZ(dex.OpIfEqz, p, "zero").
		Const(r, 2).
		Goto("end").
		Label("zero").
		Const(r, 1).
		Label("end").
		Return(r).
		Done()
	return mustTranslate(t, cb.Build().FindMethod("f", dex.Int))
}

// ssaLocalDefs counts definitions per local name in a body.
func ssaLocalDefs(b *Body) map[string]int {
	defs := make(map[string]int)
	for _, u := range b.Units {
		if l, ok := definedLocal(u); ok {
			defs[l.Name]++
		}
	}
	return defs
}

func TestBuildSSADiamondInsertsPhi(t *testing.T) {
	ssa := BuildSSA(diamondBody(t))

	phis := 0
	for _, u := range ssa.Units {
		if as, ok := u.(*AssignStmt); ok {
			if _, isPhi := as.RHS.(*PhiExpr); isPhi {
				phis++
				phi := as.RHS.(*PhiExpr)
				if len(phi.Args) != 2 {
					t.Errorf("diamond phi args = %d, want 2: %s", len(phi.Args), as)
				}
			}
		}
	}
	if phis != 1 {
		t.Fatalf("phis = %d, want 1 (join of the two const defs)\n%s", phis, ssa)
	}
}

func TestBuildSSASingleAssignmentProperty(t *testing.T) {
	ssa := BuildSSA(diamondBody(t))
	for name, n := range ssaLocalDefs(ssa) {
		if n != 1 {
			t.Errorf("local %s defined %d times; SSA requires exactly one", name, n)
		}
	}
}

func TestBuildSSAReturnUsesPhiResult(t *testing.T) {
	ssa := BuildSSA(diamondBody(t))
	var phiLHS string
	for _, u := range ssa.Units {
		if as, ok := u.(*AssignStmt); ok {
			if _, isPhi := as.RHS.(*PhiExpr); isPhi {
				phiLHS = as.LHS.(*Local).Name
			}
		}
	}
	if phiLHS == "" {
		t.Fatal("no phi")
	}
	found := false
	for _, u := range ssa.Units {
		if ret, ok := u.(*ReturnStmt); ok && ret.Val != nil {
			if l, ok2 := ret.Val.(*Local); ok2 && l.Name == phiLHS {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("return should use the phi result %s\n%s", phiLHS, ssa)
	}
}

func TestBuildSSALoop(t *testing.T) {
	// while (p != 0) { p = p - 1 }; return p  — loop header needs a phi.
	cb := dex.NewClass("com.ssa.L")
	mb := cb.StaticMethod("f", dex.Int, dex.Int)
	p := mb.Param(0)
	one := mb.Reg()
	mb.Const(one, 1).
		Label("head").
		IfZ(dex.OpIfEqz, p, "end").
		Binop(dex.OpSub, p, p, one).
		Goto("head").
		Label("end").
		Return(p).
		Done()
	body := mustTranslate(t, cb.Build().FindMethod("f", dex.Int))
	ssa := BuildSSA(body)

	for name, n := range ssaLocalDefs(ssa) {
		if n != 1 {
			t.Errorf("local %s defined %d times\n%s", name, n, ssa)
		}
	}
	phis := 0
	for _, u := range ssa.Units {
		if as, ok := u.(*AssignStmt); ok {
			if _, isPhi := as.RHS.(*PhiExpr); isPhi {
				phis++
			}
		}
	}
	if phis == 0 {
		t.Errorf("loop header should carry a phi\n%s", ssa)
	}
}

func TestBuildSSADropsUnreachable(t *testing.T) {
	cb := dex.NewClass("com.ssa.U")
	mb := cb.StaticMethod("f", dex.Int, dex.Int)
	p := mb.Param(0)
	mb.Return(p).
		Const(p, 99). // dead
		Return(p).
		Done()
	body := mustTranslate(t, cb.Build().FindMethod("f", dex.Int))
	ssa := BuildSSA(body)
	if len(ssa.Units) >= len(body.Units) {
		t.Errorf("unreachable units should be dropped: %d -> %d", len(body.Units), len(ssa.Units))
	}
	if strings.Contains(ssa.String(), "99") {
		t.Error("dead const survived SSA")
	}
}

func TestBuildSSAEmptyBody(t *testing.T) {
	ssa := BuildSSA(&Body{Method: dex.NewMethodRef("com.ssa.E", "e", dex.Void)})
	if len(ssa.Units) != 0 {
		t.Error("empty body must stay empty")
	}
}

func TestBuildSSAStraightLineNoPhis(t *testing.T) {
	cb := dex.NewClass("com.ssa.S")
	mb := cb.StaticMethod("f", dex.Int, dex.Int)
	p := mb.Param(0)
	r := mb.Reg()
	mb.Const(r, 5).
		Binop(dex.OpAdd, r, r, p).
		Return(r).
		Done()
	body := mustTranslate(t, cb.Build().FindMethod("f", dex.Int))
	ssa := BuildSSA(body)
	for _, u := range ssa.Units {
		if as, ok := u.(*AssignStmt); ok {
			if _, isPhi := as.RHS.(*PhiExpr); isPhi {
				t.Fatalf("straight-line code must not get phis: %s", as)
			}
		}
	}
	// Redefinition of r became two versions.
	defs := ssaLocalDefs(ssa)
	versions := 0
	for name := range defs {
		if strings.HasPrefix(name, "$r1#") {
			versions++
		}
	}
	if versions != 2 {
		t.Errorf("redefined local should have 2 versions, got %d (%v)", versions, defs)
	}
}

// TestBuildSSASingleAssignmentQuick: for random linear register programs,
// the SSA output always satisfies the single-assignment property and
// preserves the unit count (no branches -> no phis, no dropped code).
func TestBuildSSASingleAssignmentQuick(t *testing.T) {
	prop := func(ops []uint8) bool {
		if len(ops) > 30 {
			ops = ops[:30]
		}
		cb := dex.NewClass("com.ssa.Q")
		mb := cb.StaticMethod("f", dex.Int, dex.Int)
		p := mb.Param(0)
		r := mb.Reg()
		mb.Const(r, 1)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				mb.Const(r, int64(op))
			case 1:
				mb.Binop(dex.OpAdd, r, r, p)
			case 2:
				mb.Move(r, p)
			case 3:
				mb.AddLit(p, p, 1)
			}
		}
		mb.Return(r).Done()
		body, err := Translate(cb.Build().FindMethod("f", dex.Int))
		if err != nil {
			return false
		}
		ssa := BuildSSA(body)
		if len(ssa.Units) != len(body.Units) {
			return false
		}
		for _, n := range ssaLocalDefs(ssa) {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
