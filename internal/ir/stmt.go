package ir

import "fmt"

// Unit is one IR statement, mirroring Soot's Unit. The SSG wraps raw typed
// Units in SSGUnit nodes (paper Sec. V-A).
type Unit interface {
	fmt.Stringer
	unit()
}

// Definition is implemented by statements that define a value
// (Soot's DefinitionStmt: AssignStmt and IdentityStmt).
type Definition interface {
	Unit
	DefLHS() Value
	DefRHS() Value
}

// IdentityStmt binds a local to @this or @parameterN.
type IdentityStmt struct {
	LHS *Local
	RHS Value // *ThisRef or *ParamRef
}

func (*IdentityStmt) unit()            {}
func (s *IdentityStmt) DefLHS() Value  { return s.LHS }
func (s *IdentityStmt) DefRHS() Value  { return s.RHS }
func (s *IdentityStmt) String() string { return s.LHS.Name + " := " + s.RHS.String() }

// AssignStmt is lhs = rhs.
type AssignStmt struct {
	LHS Value // *Local, *InstanceFieldRef, *StaticFieldRef or *ArrayRef
	RHS Value
}

func (*AssignStmt) unit()            {}
func (s *AssignStmt) DefLHS() Value  { return s.LHS }
func (s *AssignStmt) DefRHS() Value  { return s.RHS }
func (s *AssignStmt) String() string { return s.LHS.String() + " = " + s.RHS.String() }

// InvokeStmt is a call whose result (if any) is discarded.
type InvokeStmt struct {
	Invoke *InvokeExpr
}

func (*InvokeStmt) unit()            {}
func (s *InvokeStmt) String() string { return s.Invoke.String() }

// IfStmt is a conditional branch to Target (a unit index).
type IfStmt struct {
	Cond   *BinopExpr
	Target int
}

func (*IfStmt) unit() {}
func (s *IfStmt) String() string {
	return fmt.Sprintf("if %s goto %d", s.Cond.String(), s.Target)
}

// GotoStmt is an unconditional branch to Target (a unit index).
type GotoStmt struct{ Target int }

func (*GotoStmt) unit()            {}
func (s *GotoStmt) String() string { return fmt.Sprintf("goto %d", s.Target) }

// ReturnStmt returns Val (nil for void returns).
type ReturnStmt struct{ Val Value }

func (*ReturnStmt) unit() {}
func (s *ReturnStmt) String() string {
	if s.Val == nil {
		return "return"
	}
	return "return " + s.Val.String()
}

// ThrowStmt throws Val.
type ThrowStmt struct{ Val Value }

func (*ThrowStmt) unit()            {}
func (s *ThrowStmt) String() string { return "throw " + s.Val.String() }

// NopStmt does nothing.
type NopStmt struct{}

func (*NopStmt) unit()            {}
func (s *NopStmt) String() string { return "nop" }

// InvokeOf extracts the invoke expression embedded in a unit, or nil: an
// InvokeStmt's call or an AssignStmt whose RHS is an InvokeExpr.
func InvokeOf(u Unit) *InvokeExpr {
	switch s := u.(type) {
	case *InvokeStmt:
		return s.Invoke
	case *AssignStmt:
		if inv, ok := s.RHS.(*InvokeExpr); ok {
			return inv
		}
	}
	return nil
}
