package ir

import (
	"strings"

	"backdroid/internal/dex"
)

// Body is the IR of one method: locals, identity statements binding
// parameters, and the translated units.
type Body struct {
	Method dex.MethodRef
	Flags  dex.AccessFlags
	Locals []*Local
	Units  []Unit
}

// IsStatic reports whether the method is static.
func (b *Body) IsStatic() bool { return b.Flags.Has(dex.AccStatic) }

// Successors returns the unit indexes control may reach after unit i.
func (b *Body) Successors(i int) []int {
	if i < 0 || i >= len(b.Units) {
		return nil
	}
	var out []int
	switch s := b.Units[i].(type) {
	case *GotoStmt:
		out = append(out, s.Target)
	case *IfStmt:
		out = append(out, s.Target)
		if i+1 < len(b.Units) {
			out = append(out, i+1)
		}
	case *ReturnStmt, *ThrowStmt:
		// no successors
	default:
		if i+1 < len(b.Units) {
			out = append(out, i+1)
		}
	}
	return out
}

// Predecessors computes the full predecessor map of the body.
func (b *Body) Predecessors() [][]int {
	preds := make([][]int, len(b.Units))
	for i := range b.Units {
		for _, s := range b.Successors(i) {
			if s >= 0 && s < len(b.Units) {
				preds[s] = append(preds[s], i)
			}
		}
	}
	return preds
}

// InvokeSites returns the unit indexes containing invoke expressions,
// optionally filtered to a callee signature (empty string matches all).
func (b *Body) InvokeSites(calleeSootSig string) []int {
	var out []int
	for i, u := range b.Units {
		inv := InvokeOf(u)
		if inv == nil {
			continue
		}
		if calleeSootSig == "" || inv.Method.SootSignature() == calleeSootSig {
			out = append(out, i)
		}
	}
	return out
}

// String renders the body in a Jimple-like layout, useful in reports and
// debugging output.
func (b *Body) String() string {
	var sb strings.Builder
	sb.WriteString(b.Method.SootSignature())
	sb.WriteString(" {\n")
	for i, u := range b.Units {
		sb.WriteString("    ")
		_ = i
		sb.WriteString(u.String())
		sb.WriteString("\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}
