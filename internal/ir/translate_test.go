package ir

import (
	"errors"
	"strings"
	"testing"

	"backdroid/internal/dex"
)

func mustTranslate(t *testing.T, m *dex.Method) *Body {
	t.Helper()
	b, err := Translate(m)
	if err != nil {
		t.Fatalf("Translate(%s): %v", m.Ref, err)
	}
	return b
}

func TestTranslateIdentityStatements(t *testing.T) {
	cb := dex.NewClass("com.a.B")
	cb.Method("m", dex.Void, dex.StringT, dex.Int).ReturnVoid().Done()
	b := mustTranslate(t, cb.Build().FindMethod("m", dex.StringT, dex.Int))

	if len(b.Units) != 4 { // this + 2 params + return
		t.Fatalf("units = %d, want 4", len(b.Units))
	}
	if got := b.Units[0].String(); got != "r0 := @this: com.a.B" {
		t.Errorf("unit 0 = %q", got)
	}
	if got := b.Units[1].String(); got != "r1 := @parameter0: java.lang.String" {
		t.Errorf("unit 1 = %q", got)
	}
	if got := b.Units[2].String(); got != "r2 := @parameter1: int" {
		t.Errorf("unit 2 = %q", got)
	}
	if b.IsStatic() {
		t.Error("instance method reported static")
	}
}

func TestTranslateStaticNoThis(t *testing.T) {
	cb := dex.NewClass("com.a.B")
	cb.StaticMethod("s", dex.Void, dex.Int).ReturnVoid().Done()
	b := mustTranslate(t, cb.Build().FindMethod("s", dex.Int))
	if got := b.Units[0].String(); got != "r0 := @parameter0: int" {
		t.Errorf("unit 0 = %q", got)
	}
	if !b.IsStatic() {
		t.Error("static method not reported static")
	}
}

func TestTranslateInvokeMoveResultMerge(t *testing.T) {
	cb := dex.NewClass("com.a.B")
	mb := cb.Method("m", dex.Void)
	r := mb.Reg()
	getInstance := dex.NewMethodRef("javax.crypto.Cipher", "getInstance",
		dex.T("javax.crypto.Cipher"), dex.StringT)
	s := mb.Reg()
	mb.ConstString(s, "AES/ECB/PKCS5Padding").
		InvokeStatic(getInstance, s).
		MoveResult(r).
		ReturnVoid().Done()
	b := mustTranslate(t, cb.Build().FindMethod("m"))

	// this-identity, const-string, merged assign, return = 4 units.
	if len(b.Units) != 4 {
		t.Fatalf("units = %d, want 4: %v", len(b.Units), b.Units)
	}
	as, ok := b.Units[2].(*AssignStmt)
	if !ok {
		t.Fatalf("unit 2 = %T, want AssignStmt", b.Units[2])
	}
	inv, ok := as.RHS.(*InvokeExpr)
	if !ok || inv.Kind != KindStatic {
		t.Fatalf("RHS = %v", as.RHS)
	}
	if !strings.Contains(as.String(), "staticinvoke <javax.crypto.Cipher: javax.crypto.Cipher getInstance(java.lang.String)>") {
		t.Errorf("assign = %q", as.String())
	}
	// The merged local carries the return type.
	lhs := as.LHS.(*Local)
	if lhs.Type != dex.T("javax.crypto.Cipher") {
		t.Errorf("result local type = %s", lhs.Type)
	}
}

func TestTranslateBranchTargetRemap(t *testing.T) {
	cb := dex.NewClass("com.a.B")
	mb := cb.StaticMethod("f", dex.Int, dex.Int)
	p := mb.Param(0)
	r := mb.Reg()
	helper := dex.NewMethodRef("com.a.B", "h", dex.Int)
	mb.IfZ(dex.OpIfEqz, p, "zero").
		InvokeStatic(helper).
		MoveResult(r).
		Goto("end").
		Label("zero").
		Const(r, 0).
		Label("end").
		Return(r).
		Done()
	b := mustTranslate(t, cb.Build().FindMethod("f", dex.Int))

	// Layout: 0 id, 1 if, 2 merged invoke+move, 3 goto, 4 const, 5 return.
	ifs, ok := b.Units[1].(*IfStmt)
	if !ok {
		t.Fatalf("unit 1 = %T", b.Units[1])
	}
	if ifs.Target != 4 {
		t.Errorf("if target = %d, want 4 (const)", ifs.Target)
	}
	gs, ok := b.Units[3].(*GotoStmt)
	if !ok {
		t.Fatalf("unit 3 = %T", b.Units[3])
	}
	if gs.Target != 5 {
		t.Errorf("goto target = %d, want 5 (return)", gs.Target)
	}
}

func TestTranslateFieldsAndArrays(t *testing.T) {
	fld := dex.NewFieldRef("com.a.B", "port", dex.Int)
	sfld := dex.NewFieldRef("com.a.B", "NAME", dex.StringT)
	cb := dex.NewClass("com.a.B").Field("port", dex.Int).StaticField("NAME", dex.StringT)
	mb := cb.Method("m", dex.Void)
	v, arr, idx := mb.Reg(), mb.Reg(), mb.Reg()
	mb.IGet(v, mb.This(), fld).
		IPut(v, mb.This(), fld).
		SGet(v, sfld).
		SPut(v, sfld).
		Const(idx, 0).
		NewArray(arr, idx, dex.Int).
		AGet(v, arr, idx).
		APut(v, arr, idx).
		ReturnVoid().Done()
	b := mustTranslate(t, cb.Build().FindMethod("m"))

	var igets, iputs, sgets, sputs, agets, aputs int
	for _, u := range b.Units {
		as, ok := u.(*AssignStmt)
		if !ok {
			continue
		}
		switch as.LHS.(type) {
		case *InstanceFieldRef:
			iputs++
		case *StaticFieldRef:
			sputs++
		case *ArrayRef:
			aputs++
		}
		switch as.RHS.(type) {
		case *InstanceFieldRef:
			igets++
		case *StaticFieldRef:
			sgets++
		case *ArrayRef:
			agets++
		}
	}
	if igets != 1 || iputs != 1 || sgets != 1 || sputs != 1 || agets != 1 || aputs != 1 {
		t.Errorf("field/array ops: iget=%d iput=%d sget=%d sput=%d aget=%d aput=%d",
			igets, iputs, sgets, sputs, agets, aputs)
	}
}

func TestTranslateRendersJimpleStyle(t *testing.T) {
	cb := dex.NewClass("com.studiosol.util.NanoHTTPD").Field("myPort", dex.Int)
	mb := cb.Constructor(dex.Int)
	objInit := dex.NewMethodRef("java.lang.Object", "<init>", dex.Void)
	mb.InvokeDirect(objInit, mb.This()).
		IPut(mb.Param(0), mb.This(), dex.NewFieldRef("com.studiosol.util.NanoHTTPD", "myPort", dex.Int)).
		ReturnVoid().Done()
	b := mustTranslate(t, cb.Build().FindMethod("<init>", dex.Int))

	s := b.String()
	for _, frag := range []string{
		"r0 := @this: com.studiosol.util.NanoHTTPD",
		"specialinvoke r0.<java.lang.Object: void <init>()>()",
		"r0.<com.studiosol.util.NanoHTTPD: int myPort> = r1",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("body missing %q in:\n%s", frag, s)
		}
	}
}

func TestTranslateErrors(t *testing.T) {
	// Abstract method.
	iface := dex.NewInterface("com.a.I").AbstractMethod("x", dex.Void).Build()
	if _, err := Translate(iface.FindMethod("x")); err == nil {
		t.Error("abstract method must fail")
	}

	// Orphan move-result.
	m := &dex.Method{
		Ref:       dex.NewMethodRef("com.a.B", "bad", dex.Void),
		Flags:     dex.AccPublic | dex.AccStatic,
		Registers: 2,
		Code:      []dex.Instruction{{Op: dex.OpMoveResult, A: 0}, {Op: dex.OpReturnVoid}},
	}
	_, err := Translate(m)
	var te *TranslateError
	if !errors.As(err, &te) {
		t.Errorf("orphan move-result error = %v, want TranslateError", err)
	}

	// Register out of range.
	m2 := &dex.Method{
		Ref:       dex.NewMethodRef("com.a.B", "bad2", dex.Void),
		Flags:     dex.AccPublic | dex.AccStatic,
		Registers: 1,
		Code:      []dex.Instruction{{Op: dex.OpConst, A: 9, Lit: 1}, {Op: dex.OpReturnVoid}},
	}
	if _, err := Translate(m2); err == nil {
		t.Error("out-of-range register must fail")
	}

	// Arg/param count mismatch.
	callee := dex.NewMethodRef("com.a.B", "callee", dex.Void, dex.Int)
	m3 := &dex.Method{
		Ref:       dex.NewMethodRef("com.a.B", "bad3", dex.Void),
		Flags:     dex.AccPublic | dex.AccStatic,
		Registers: 1,
		Code: []dex.Instruction{
			{Op: dex.OpInvokeStatic, Method: &callee},
			{Op: dex.OpReturnVoid},
		},
	}
	if _, err := Translate(m3); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestSuccessorsAndPredecessors(t *testing.T) {
	cb := dex.NewClass("com.a.B")
	mb := cb.StaticMethod("f", dex.Int, dex.Int)
	p := mb.Param(0)
	mb.IfZ(dex.OpIfEqz, p, "zero").
		Const(p, 1).
		Goto("end").
		Label("zero").
		Const(p, 0).
		Label("end").
		Return(p).
		Done()
	b := mustTranslate(t, cb.Build().FindMethod("f", dex.Int))
	// 0 id, 1 if, 2 const1, 3 goto, 4 const0, 5 return.
	succOf := func(i int) []int { return b.Successors(i) }
	if got := succOf(1); len(got) != 2 {
		t.Errorf("if successors = %v", got)
	}
	if got := succOf(3); len(got) != 1 || got[0] != 5 {
		t.Errorf("goto successors = %v", got)
	}
	if got := succOf(5); len(got) != 0 {
		t.Errorf("return successors = %v", got)
	}
	preds := b.Predecessors()
	if len(preds[5]) != 2 {
		t.Errorf("return predecessors = %v", preds[5])
	}
	if b.Successors(-1) != nil || b.Successors(99) != nil {
		t.Error("out-of-range successors must be nil")
	}
}

func TestInvokeSites(t *testing.T) {
	cb := dex.NewClass("com.a.B")
	mb := cb.Method("m", dex.Void)
	h1 := dex.NewMethodRef("com.a.B", "h1", dex.Void)
	h2 := dex.NewMethodRef("com.a.B", "h2", dex.Int)
	r := mb.Reg()
	mb.InvokeVirtual(h1, mb.This()).
		InvokeVirtual(h2, mb.This()).
		MoveResult(r).
		ReturnVoid().Done()
	b := mustTranslate(t, cb.Build().FindMethod("m"))

	if got := b.InvokeSites(""); len(got) != 2 {
		t.Errorf("all invoke sites = %v", got)
	}
	if got := b.InvokeSites(h1.SootSignature()); len(got) != 1 {
		t.Errorf("h1 sites = %v", got)
	}
	if got := b.InvokeSites("<com.a.B: void nope()>"); got != nil {
		t.Errorf("missing callee sites = %v", got)
	}
}

func TestProgramCache(t *testing.T) {
	f := dex.NewFile()
	cb := dex.NewClass("com.a.B")
	cb.Method("m", dex.Void).ReturnVoid().Done()
	if err := f.AddClass(cb.Build()); err != nil {
		t.Fatal(err)
	}
	p := NewProgram(f)
	ref := dex.NewMethodRef("com.a.B", "m", dex.Void)
	b1, err := p.Body(ref)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p.Body(ref)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Error("Body must cache")
	}
	if p.TranslatedCount() != 1 {
		t.Errorf("TranslatedCount = %d", p.TranslatedCount())
	}
	if _, err := p.Body(dex.NewMethodRef("com.a.Missing", "m", dex.Void)); err == nil {
		t.Error("missing method must fail")
	}
	// Failure is cached but does not pollute bodies.
	if p.TranslatedCount() != 1 {
		t.Errorf("TranslatedCount after failure = %d", p.TranslatedCount())
	}
}

func TestLocalsOf(t *testing.T) {
	a := &Local{Name: "a"}
	b := &Local{Name: "b"}
	inv := &InvokeExpr{Kind: KindVirtual, Base: a, Method: dex.NewMethodRef("c.D", "m", dex.Void, dex.Int), Args: []Value{b}}
	got := LocalsOf(inv)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("LocalsOf(invoke) = %v", got)
	}
	bin := &BinopExpr{Op: "+", Left: a, Right: b}
	if got := LocalsOf(bin); len(got) != 2 {
		t.Errorf("LocalsOf(binop) = %v", got)
	}
	if got := LocalsOf(IntConst{V: 3}); got != nil {
		t.Errorf("LocalsOf(const) = %v", got)
	}
	phi := &PhiExpr{Args: []*Local{a, b}}
	if got := LocalsOf(phi); len(got) != 2 {
		t.Errorf("LocalsOf(phi) = %v", got)
	}
	arr := &ArrayRef{Base: a, Index: b}
	if got := LocalsOf(arr); len(got) != 2 {
		t.Errorf("LocalsOf(arrayref) = %v", got)
	}
}
