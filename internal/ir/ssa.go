package ir

import (
	"fmt"
	"sort"

	"backdroid/internal/dex"
)

// BuildSSA converts a body into SSA form — the Shimple view of the paper's
// IR: every local is defined exactly once, and control-flow joins where a
// local has several reaching definitions receive a PhiExpr definition
// (paper Sec. V-B lists PhiExpr among the six handled expression kinds).
//
// The input body is not modified; a fresh body with versioned locals
// ("r1#2") is returned. Unreachable units are dropped.
func BuildSSA(b *Body) *Body {
	n := len(b.Units)
	if n == 0 {
		return &Body{Method: b.Method, Flags: b.Flags}
	}

	// Reachability and predecessors at unit granularity.
	reach := make([]bool, n)
	var stack []int
	stack = append(stack, 0)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u < 0 || u >= n || reach[u] {
			continue
		}
		reach[u] = true
		stack = append(stack, b.Successors(u)...)
	}
	preds := make([][]int, n)
	for i := 0; i < n; i++ {
		if !reach[i] {
			continue
		}
		for _, s := range b.Successors(i) {
			if s >= 0 && s < n && reach[s] {
				preds[s] = append(preds[s], i)
			}
		}
	}

	idom := computeDominators(n, reach, preds)
	frontiers := dominanceFrontiers(n, reach, preds, idom)

	// Definition sites per local name.
	defSites := make(map[string][]int)
	for i := 0; i < n; i++ {
		if !reach[i] {
			continue
		}
		if l, ok := definedLocal(b.Units[i]); ok {
			defSites[l.Name] = append(defSites[l.Name], i)
		}
	}

	// Iterated dominance frontier phi placement: phiAt[unit] lists local
	// names needing a phi right before the unit.
	phiAt := make(map[int][]string)
	names := make([]string, 0, len(defSites))
	for name := range defSites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sites := defSites[name]
		if len(sites) < 2 {
			continue
		}
		placed := make(map[int]bool)
		work := append([]int(nil), sites...)
		for len(work) > 0 {
			d := work[0]
			work = work[1:]
			for _, f := range frontiers[d] {
				if placed[f] {
					continue
				}
				placed[f] = true
				phiAt[f] = append(phiAt[f], name)
				work = append(work, f)
			}
		}
	}

	return renameSSA(b, reach, preds, idom, phiAt)
}

// definedLocal extracts the local defined by a unit, if any.
func definedLocal(u Unit) (*Local, bool) {
	if d, ok := u.(Definition); ok {
		if l, ok2 := d.DefLHS().(*Local); ok2 {
			return l, true
		}
	}
	return nil, false
}

// computeDominators runs the iterative dataflow algorithm (Cooper-Harvey-
// Kennedy style on RPO) at unit granularity. idom[0] == 0; unreachable
// units get -1.
func computeDominators(n int, reach []bool, preds [][]int) []int {
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0

	// Reverse postorder over successor sets rebuilt from the predecessor
	// table.
	visited := make([]bool, n)
	var post []int
	var dfs func(int, func(int) []int)
	succs := make([][]int, n)
	for j := 0; j < n; j++ {
		for _, p := range preds[j] {
			succs[p] = append(succs[p], j)
		}
	}
	dfs = func(u int, next func(int) []int) {
		visited[u] = true
		for _, s := range next(u) {
			if !visited[s] {
				dfs(s, next)
			}
		}
		post = append(post, u)
	}
	dfs(0, func(i int) []int { return succs[i] })
	rpo := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, u := range rpo {
		rpoNum[u] = i
	}

	intersect := func(a, c int) int {
		for a != c {
			for rpoNum[a] > rpoNum[c] {
				a = idom[a]
			}
			for rpoNum[c] > rpoNum[a] {
				c = idom[c]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, u := range rpo {
			if u == 0 || !reach[u] {
				continue
			}
			newIdom := -1
			for _, p := range preds[u] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[u] != newIdom {
				idom[u] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// dominanceFrontiers computes DF per unit.
func dominanceFrontiers(n int, reach []bool, preds [][]int, idom []int) [][]int {
	df := make([][]int, n)
	seen := make([]map[int]bool, n)
	for u := 0; u < n; u++ {
		if !reach[u] || len(preds[u]) < 2 {
			continue
		}
		for _, p := range preds[u] {
			runner := p
			for runner != -1 && runner != idom[u] {
				if seen[runner] == nil {
					seen[runner] = make(map[int]bool)
				}
				if !seen[runner][u] {
					seen[runner][u] = true
					df[runner] = append(df[runner], u)
				}
				next := idom[runner]
				if next == runner {
					break
				}
				runner = next
			}
		}
	}
	return df
}

// renameSSA rebuilds the unit list with phis inserted and locals renamed to
// unique versions along the dominator tree.
func renameSSA(b *Body, reach []bool, preds [][]int, idom []int, phiAt map[int][]string) *Body {
	n := len(b.Units)
	out := &Body{Method: b.Method, Flags: b.Flags}

	// Layout: for each reachable old unit, its phis (in name order) then
	// the unit itself. Compute new indexes first for branch remapping.
	newIndex := make([]int, n)
	next := 0
	for i := 0; i < n; i++ {
		if !reach[i] {
			newIndex[i] = -1
			continue
		}
		sort.Strings(phiAt[i])
		next += len(phiAt[i])
		newIndex[i] = next
		next++
	}
	// Branch targets jump to the phi block of the target, not past it.
	branchTarget := func(old int) int {
		if old < 0 || old >= n || newIndex[old] < 0 {
			return 0
		}
		return newIndex[old] - len(phiAt[old])
	}

	units := make([]Unit, next)

	// Version bookkeeping.
	versions := make(map[string]int)
	typeOf := make(map[string]*Local)
	for _, l := range b.Locals {
		typeOf[l.Name] = l
	}
	fresh := func(name string) *Local {
		versions[name]++
		t := dex.ObjectT
		if base := typeOf[name]; base != nil {
			t = base.Type
		}
		nl := &Local{Name: fmt.Sprintf("%s#%d", name, versions[name]), Type: t}
		out.Locals = append(out.Locals, nl)
		return nl
	}

	// Phi nodes per (old unit, name), to fill operands during renaming.
	type phiRef struct {
		phi *PhiExpr
		lhs *Local
	}
	phiNodes := make(map[int]map[string]*phiRef)
	for i, names := range phiAt {
		phiNodes[i] = make(map[string]*phiRef, len(names))
		for _, name := range names {
			phiNodes[i][name] = &phiRef{phi: &PhiExpr{}}
		}
	}

	// Dominator tree children.
	children := make([][]int, n)
	for u := 0; u < n; u++ {
		if u != 0 && reach[u] && idom[u] >= 0 {
			children[idom[u]] = append(children[idom[u]], u)
		}
	}

	var rename func(u int, env map[string]*Local)
	rename = func(u int, env map[string]*Local) {
		local := make(map[string]*Local, len(env))
		for k, v := range env {
			local[k] = v
		}

		// Phi definitions first.
		base := newIndex[u] - len(phiAt[u])
		for pi, name := range phiAt[u] {
			ref := phiNodes[u][name]
			nl := fresh(name)
			ref.lhs = nl
			units[base+pi] = &AssignStmt{LHS: nl, RHS: ref.phi}
			local[name] = nl
		}

		// The unit itself, uses rewritten then defs versioned.
		units[newIndex[u]] = rewriteUnit(b.Units[u], local, fresh, branchTarget)
		if l, ok := definedLocal(b.Units[u]); ok {
			if nu, ok2 := definedLocal(units[newIndex[u]]); ok2 {
				local[l.Name] = nu
			}
		}

		// Fill phi operands of CFG successors with the reaching versions.
		for _, s := range sortedInts(succsOf(preds, n, u)) {
			for _, name := range phiAt[s] {
				ref := phiNodes[s][name]
				if v, ok := local[name]; ok {
					ref.phi.Args = append(ref.phi.Args, v)
				}
			}
		}

		for _, c := range children[u] {
			rename(c, local)
		}
	}
	rename(0, map[string]*Local{})

	out.Units = units
	return out
}

// succsOf recovers the successor list of u from the predecessor table.
func succsOf(preds [][]int, n, u int) []int {
	var out []int
	for j := 0; j < n; j++ {
		for _, p := range preds[j] {
			if p == u {
				out = append(out, j)
			}
		}
	}
	return out
}

func sortedInts(v []int) []int {
	sort.Ints(v)
	return v
}

// rewriteUnit clones a unit with uses replaced by current versions, the
// defined local given a fresh version, and branch targets remapped.
func rewriteUnit(u Unit, env map[string]*Local, fresh func(string) *Local, target func(int) int) Unit {
	use := func(v Value) Value { return rewriteValue(v, env) }
	switch s := u.(type) {
	case *IdentityStmt:
		return &IdentityStmt{LHS: fresh(s.LHS.Name), RHS: s.RHS}
	case *AssignStmt:
		rhs := use(s.RHS)
		switch lhs := s.LHS.(type) {
		case *Local:
			return &AssignStmt{LHS: fresh(lhs.Name), RHS: rhs}
		default:
			return &AssignStmt{LHS: use(s.LHS), RHS: rhs}
		}
	case *InvokeStmt:
		return &InvokeStmt{Invoke: use(s.Invoke).(*InvokeExpr)}
	case *IfStmt:
		return &IfStmt{Cond: use(s.Cond).(*BinopExpr), Target: target(s.Target)}
	case *GotoStmt:
		return &GotoStmt{Target: target(s.Target)}
	case *ReturnStmt:
		if s.Val == nil {
			return &ReturnStmt{}
		}
		return &ReturnStmt{Val: use(s.Val)}
	case *ThrowStmt:
		return &ThrowStmt{Val: use(s.Val)}
	}
	return &NopStmt{}
}

// rewriteValue replaces locals with their current SSA versions.
func rewriteValue(v Value, env map[string]*Local) Value {
	switch t := v.(type) {
	case *Local:
		if nl, ok := env[t.Name]; ok {
			return nl
		}
		return t
	case *InstanceFieldRef:
		return &InstanceFieldRef{Base: rewriteValue(t.Base, env).(*Local), Field: t.Field}
	case *ArrayRef:
		return &ArrayRef{Base: rewriteValue(t.Base, env).(*Local), Index: rewriteValue(t.Index, env)}
	case *BinopExpr:
		return &BinopExpr{Op: t.Op, Left: rewriteValue(t.Left, env), Right: rewriteValue(t.Right, env)}
	case *CastExpr:
		return &CastExpr{Type: t.Type, Val: rewriteValue(t.Val, env)}
	case *NewArrayExpr:
		return &NewArrayExpr{Elem: t.Elem, Size: rewriteValue(t.Size, env)}
	case *InvokeExpr:
		inv := &InvokeExpr{Kind: t.Kind, Method: t.Method}
		if t.Base != nil {
			inv.Base = rewriteValue(t.Base, env).(*Local)
		}
		for _, a := range t.Args {
			inv.Args = append(inv.Args, rewriteValue(a, env))
		}
		return inv
	}
	return v
}
