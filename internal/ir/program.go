package ir

import (
	"fmt"
	"sync"

	"backdroid/internal/dex"
)

// Program is a lazy, cached view of the IR of a whole dex file. BackDroid
// only translates the methods its targeted analysis actually touches, which
// is a large part of why it skips irrelevant code; the whole-app baseline
// translates everything.
type Program struct {
	file *dex.File

	mu       sync.Mutex
	bodies   map[string]*Body
	failures map[string]error
	observer func(dex.MethodRef)
}

// SetObserver installs a hook that sees every Body lookup — cached or not
// — before translation. The delta engine records which classes an
// analysis touched through it; nil removes it. Not safe to change while
// other goroutines use the program.
func (p *Program) SetObserver(fn func(dex.MethodRef)) { p.observer = fn }

// NewProgram wraps a dex file.
func NewProgram(f *dex.File) *Program {
	return &Program{
		file:     f,
		bodies:   make(map[string]*Body),
		failures: make(map[string]error),
	}
}

// File returns the underlying dex file.
func (p *Program) File() *dex.File { return p.file }

// Body translates (or returns the cached IR of) the method. Translation
// failures are cached too, so repeated lookups stay cheap.
func (p *Program) Body(ref dex.MethodRef) (*Body, error) {
	key := ref.SootSignature()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.observer != nil {
		p.observer(ref)
	}
	if b, ok := p.bodies[key]; ok {
		return b, nil
	}
	if err, ok := p.failures[key]; ok {
		return nil, err
	}
	m := p.file.Method(ref)
	if m == nil {
		err := fmt.Errorf("ir: method %s not found in dex", ref)
		p.failures[key] = err
		return nil, err
	}
	b, err := Translate(m)
	if err != nil {
		p.failures[key] = err
		return nil, err
	}
	p.bodies[key] = b
	return b, nil
}

// TranslatedCount returns the number of successfully translated bodies —
// a direct measure of how much of the app an analysis touched.
func (p *Program) TranslatedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.bodies)
}

// SSABody returns the Shimple (SSA) view of the method: phi-carrying,
// single-assignment form, built on demand from the cached body.
func (p *Program) SSABody(ref dex.MethodRef) (*Body, error) {
	b, err := p.Body(ref)
	if err != nil {
		return nil, err
	}
	return BuildSSA(b), nil
}
