package ir

import (
	"fmt"

	"backdroid/internal/dex"
)

// TranslateError reports a bytecode-to-IR transformation failure. The
// paper's evaluation notes two apps failing exactly here ("the format
// transformation from bytecode to IR"), so the error is a named type that
// callers can classify.
type TranslateError struct {
	Method dex.MethodRef
	Reason string
}

func (e *TranslateError) Error() string {
	return fmt.Sprintf("ir: translating %s: %s", e.Method, e.Reason)
}

var binopSymbols = map[dex.Op]string{
	dex.OpAdd: "+",
	dex.OpSub: "-",
	dex.OpMul: "*",
	dex.OpDiv: "/",
	dex.OpRem: "%",
	dex.OpAnd: "&",
	dex.OpOr:  "|",
	dex.OpXor: "^",
}

var condSymbols = map[dex.Op]string{
	dex.OpIfEq:  "==",
	dex.OpIfNe:  "!=",
	dex.OpIfLt:  "<",
	dex.OpIfGe:  ">=",
	dex.OpIfGt:  ">",
	dex.OpIfLe:  "<=",
	dex.OpIfEqz: "==",
	dex.OpIfNez: "!=",
}

var invokeKinds = map[dex.Op]InvokeKind{
	dex.OpInvokeVirtual:   KindVirtual,
	dex.OpInvokeDirect:    KindSpecial,
	dex.OpInvokeStatic:    KindStatic,
	dex.OpInvokeInterface: KindInterface,
	dex.OpInvokeSuper:     KindSuper,
}

// Translate converts a dex method body into IR. Identity statements for
// @this/@parameters come first; each subsequent unit corresponds to one dex
// instruction, except invoke+move-result pairs which merge into a single
// AssignStmt (as Soot does).
func Translate(m *dex.Method) (*Body, error) {
	if m.IsAbstract() {
		return nil, &TranslateError{Method: m.Ref, Reason: "abstract method has no body"}
	}
	b := &Body{Method: m.Ref, Flags: m.Flags}

	locals := make([]*Local, m.Registers)
	for i := range locals {
		name := fmt.Sprintf("r%d", i)
		if i >= m.Ins {
			name = fmt.Sprintf("$r%d", i)
		}
		locals[i] = &Local{Name: name, Type: dex.ObjectT}
	}
	b.Locals = locals
	local := func(r int) (*Local, error) {
		if r < 0 || r >= len(locals) {
			return nil, &TranslateError{Method: m.Ref, Reason: fmt.Sprintf("register v%d out of range", r)}
		}
		return locals[r], nil
	}

	// Identity units.
	reg := 0
	if !m.IsStatic() {
		locals[0].Type = dex.T(m.Ref.Class)
		b.Units = append(b.Units, &IdentityStmt{LHS: locals[0], RHS: &ThisRef{Class: m.Ref.Class}})
		reg = 1
	}
	for pi, pt := range m.Ref.Params {
		if reg >= len(locals) {
			return nil, &TranslateError{Method: m.Ref, Reason: "fewer registers than parameters"}
		}
		locals[reg].Type = pt
		b.Units = append(b.Units, &IdentityStmt{LHS: locals[reg], RHS: &ParamRef{Index: pi, Type: pt}})
		reg++
	}
	idBase := len(b.Units)

	// First pass: translate instructions, merging invoke+move-result.
	dexToUnit := make([]int, len(m.Code))
	type branchFix struct {
		unit      int
		dexTarget int
	}
	var fixes []branchFix

	for i := 0; i < len(m.Code); i++ {
		in := &m.Code[i]
		unitIdx := len(b.Units)
		dexToUnit[i] = unitIdx

		switch in.Op {
		case dex.OpNop:
			b.Units = append(b.Units, &NopStmt{})

		case dex.OpConst:
			dst, err := local(in.A)
			if err != nil {
				return nil, err
			}
			dst.Type = dex.Int
			b.Units = append(b.Units, &AssignStmt{LHS: dst, RHS: IntConst{V: in.Lit}})

		case dex.OpConstString:
			dst, err := local(in.A)
			if err != nil {
				return nil, err
			}
			dst.Type = dex.StringT
			b.Units = append(b.Units, &AssignStmt{LHS: dst, RHS: StringConst{V: in.Str}})

		case dex.OpConstClass:
			dst, err := local(in.A)
			if err != nil {
				return nil, err
			}
			dst.Type = dex.T("java.lang.Class")
			b.Units = append(b.Units, &AssignStmt{LHS: dst, RHS: ClassConst{Class: in.Type.ClassName()}})

		case dex.OpConstNull:
			dst, err := local(in.A)
			if err != nil {
				return nil, err
			}
			b.Units = append(b.Units, &AssignStmt{LHS: dst, RHS: NullConst{}})

		case dex.OpMove:
			dst, err := local(in.A)
			if err != nil {
				return nil, err
			}
			src, err := local(in.B)
			if err != nil {
				return nil, err
			}
			dst.Type = src.Type
			b.Units = append(b.Units, &AssignStmt{LHS: dst, RHS: src})

		case dex.OpMoveResult:
			return nil, &TranslateError{Method: m.Ref, Reason: fmt.Sprintf("move-result at %d without preceding invoke", i)}

		case dex.OpNewInstance:
			dst, err := local(in.A)
			if err != nil {
				return nil, err
			}
			dst.Type = in.Type
			b.Units = append(b.Units, &AssignStmt{LHS: dst, RHS: &NewExpr{Class: in.Type.ClassName()}})

		case dex.OpNewArray:
			dst, err := local(in.A)
			if err != nil {
				return nil, err
			}
			size, err := local(in.B)
			if err != nil {
				return nil, err
			}
			dst.Type = in.Type
			b.Units = append(b.Units, &AssignStmt{LHS: dst, RHS: &NewArrayExpr{Elem: in.Type.Elem(), Size: size}})

		case dex.OpInvokeVirtual, dex.OpInvokeDirect, dex.OpInvokeStatic, dex.OpInvokeInterface, dex.OpInvokeSuper:
			inv, err := makeInvoke(m, in, local)
			if err != nil {
				return nil, err
			}
			// Merge a following move-result into a single AssignStmt.
			if i+1 < len(m.Code) && m.Code[i+1].Op == dex.OpMoveResult {
				dst, err := local(m.Code[i+1].A)
				if err != nil {
					return nil, err
				}
				dst.Type = in.Method.Ret
				b.Units = append(b.Units, &AssignStmt{LHS: dst, RHS: inv})
				dexToUnit[i+1] = unitIdx
				i++
			} else {
				b.Units = append(b.Units, &InvokeStmt{Invoke: inv})
			}

		case dex.OpIGet:
			dst, err := local(in.A)
			if err != nil {
				return nil, err
			}
			obj, err := local(in.B)
			if err != nil {
				return nil, err
			}
			dst.Type = in.Field.Type
			b.Units = append(b.Units, &AssignStmt{LHS: dst, RHS: &InstanceFieldRef{Base: obj, Field: *in.Field}})

		case dex.OpIPut:
			src, err := local(in.A)
			if err != nil {
				return nil, err
			}
			obj, err := local(in.B)
			if err != nil {
				return nil, err
			}
			b.Units = append(b.Units, &AssignStmt{LHS: &InstanceFieldRef{Base: obj, Field: *in.Field}, RHS: src})

		case dex.OpSGet:
			dst, err := local(in.A)
			if err != nil {
				return nil, err
			}
			dst.Type = in.Field.Type
			b.Units = append(b.Units, &AssignStmt{LHS: dst, RHS: &StaticFieldRef{Field: *in.Field}})

		case dex.OpSPut:
			src, err := local(in.A)
			if err != nil {
				return nil, err
			}
			b.Units = append(b.Units, &AssignStmt{LHS: &StaticFieldRef{Field: *in.Field}, RHS: src})

		case dex.OpAGet:
			dst, err := local(in.A)
			if err != nil {
				return nil, err
			}
			arr, err := local(in.B)
			if err != nil {
				return nil, err
			}
			idx, err := local(in.C)
			if err != nil {
				return nil, err
			}
			dst.Type = arr.Type.Elem()
			b.Units = append(b.Units, &AssignStmt{LHS: dst, RHS: &ArrayRef{Base: arr, Index: idx}})

		case dex.OpAPut:
			src, err := local(in.A)
			if err != nil {
				return nil, err
			}
			arr, err := local(in.B)
			if err != nil {
				return nil, err
			}
			idx, err := local(in.C)
			if err != nil {
				return nil, err
			}
			b.Units = append(b.Units, &AssignStmt{LHS: &ArrayRef{Base: arr, Index: idx}, RHS: src})

		case dex.OpAdd, dex.OpSub, dex.OpMul, dex.OpDiv, dex.OpRem, dex.OpAnd, dex.OpOr, dex.OpXor:
			dst, err := local(in.A)
			if err != nil {
				return nil, err
			}
			lhs, err := local(in.B)
			if err != nil {
				return nil, err
			}
			rhs, err := local(in.C)
			if err != nil {
				return nil, err
			}
			dst.Type = dex.Int
			b.Units = append(b.Units, &AssignStmt{LHS: dst, RHS: &BinopExpr{Op: binopSymbols[in.Op], Left: lhs, Right: rhs}})

		case dex.OpAddLit:
			dst, err := local(in.A)
			if err != nil {
				return nil, err
			}
			lhs, err := local(in.B)
			if err != nil {
				return nil, err
			}
			dst.Type = dex.Int
			b.Units = append(b.Units, &AssignStmt{LHS: dst, RHS: &BinopExpr{Op: "+", Left: lhs, Right: IntConst{V: in.Lit}}})

		case dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfGe, dex.OpIfGt, dex.OpIfLe:
			a, err := local(in.A)
			if err != nil {
				return nil, err
			}
			bb, err := local(in.B)
			if err != nil {
				return nil, err
			}
			fixes = append(fixes, branchFix{unit: unitIdx, dexTarget: in.Target})
			b.Units = append(b.Units, &IfStmt{Cond: &BinopExpr{Op: condSymbols[in.Op], Left: a, Right: bb}})

		case dex.OpIfEqz, dex.OpIfNez:
			a, err := local(in.A)
			if err != nil {
				return nil, err
			}
			fixes = append(fixes, branchFix{unit: unitIdx, dexTarget: in.Target})
			b.Units = append(b.Units, &IfStmt{Cond: &BinopExpr{Op: condSymbols[in.Op], Left: a, Right: IntConst{V: 0}}})

		case dex.OpGoto:
			fixes = append(fixes, branchFix{unit: unitIdx, dexTarget: in.Target})
			b.Units = append(b.Units, &GotoStmt{})

		case dex.OpReturn:
			v, err := local(in.A)
			if err != nil {
				return nil, err
			}
			b.Units = append(b.Units, &ReturnStmt{Val: v})

		case dex.OpReturnVoid:
			b.Units = append(b.Units, &ReturnStmt{})

		case dex.OpCheckCast:
			dst, err := local(in.A)
			if err != nil {
				return nil, err
			}
			b.Units = append(b.Units, &AssignStmt{LHS: dst, RHS: &CastExpr{Type: in.Type, Val: dst}})
			dst.Type = in.Type

		case dex.OpInstanceOf:
			dst, err := local(in.A)
			if err != nil {
				return nil, err
			}
			src, err := local(in.B)
			if err != nil {
				return nil, err
			}
			dst.Type = dex.Bool
			b.Units = append(b.Units, &AssignStmt{LHS: dst, RHS: &BinopExpr{Op: "instanceof", Left: src, Right: ClassConst{Class: in.Type.ClassName()}}})

		case dex.OpThrow:
			v, err := local(in.A)
			if err != nil {
				return nil, err
			}
			b.Units = append(b.Units, &ThrowStmt{Val: v})

		default:
			return nil, &TranslateError{Method: m.Ref, Reason: fmt.Sprintf("unknown opcode %d at %d", in.Op, i)}
		}
	}

	// Second pass: remap dex branch targets to unit indexes.
	for _, fx := range fixes {
		if fx.dexTarget < 0 || fx.dexTarget >= len(m.Code) {
			return nil, &TranslateError{Method: m.Ref, Reason: fmt.Sprintf("branch target %d out of range", fx.dexTarget)}
		}
		target := dexToUnit[fx.dexTarget]
		switch s := b.Units[fx.unit].(type) {
		case *IfStmt:
			s.Target = target
		case *GotoStmt:
			s.Target = target
		}
	}
	_ = idBase
	return b, nil
}

func makeInvoke(m *dex.Method, in *dex.Instruction, local func(int) (*Local, error)) (*InvokeExpr, error) {
	if in.Method == nil {
		return nil, &TranslateError{Method: m.Ref, Reason: "invoke without method reference"}
	}
	kind := invokeKinds[in.Op]
	inv := &InvokeExpr{Kind: kind, Method: *in.Method}
	argRegs := in.Args
	if kind != KindStatic {
		if len(argRegs) == 0 {
			return nil, &TranslateError{Method: m.Ref, Reason: "instance invoke without receiver"}
		}
		base, err := local(argRegs[0])
		if err != nil {
			return nil, err
		}
		inv.Base = base
		argRegs = argRegs[1:]
	}
	if len(argRegs) != len(in.Method.Params) {
		return nil, &TranslateError{Method: m.Ref, Reason: fmt.Sprintf(
			"invoke %s: %d args for %d params", in.Method.SootSignature(), len(argRegs), len(in.Method.Params))}
	}
	for _, r := range argRegs {
		l, err := local(r)
		if err != nil {
			return nil, err
		}
		inv.Args = append(inv.Args, l)
	}
	return inv, nil
}
