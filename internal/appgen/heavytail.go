package appgen

import (
	"fmt"
	"math/rand"

	"backdroid/internal/android"
)

// HeavyTailOptions configures HeavyTailCorpus.
type HeavyTailOptions struct {
	// SmallApps is how many light apps accompany the outlier (default 6).
	SmallApps int
	// Seed drives all sampling.
	Seed int64
	// HeavySinks is the outlier's sink count (default 121, the
	// ManySinkOutlierSpec / Sec. VI-D Huawei Health analogue).
	HeavySinks int
	// HeavySizeMB is the outlier's size (default 8, the outlier spec's).
	HeavySizeMB float64
}

// HeavyTailCorpus is the work-stealing benchmark corpus: one many-sink
// outlier first (the worst case — the heavy app is dispatched before the
// fleet has anything else to do) followed by SmallApps light apps. With
// job-level placement the outlier's node grinds alone long after the
// small apps drain; sink-level stealing splits its tail across the idle
// nodes. All sampling is deterministic in Seed.
func HeavyTailCorpus(opts HeavyTailOptions) []Spec {
	if opts.SmallApps <= 0 {
		opts.SmallApps = 6
	}
	if opts.HeavySinks <= 0 {
		opts.HeavySinks = 121
	}
	if opts.HeavySizeMB <= 0 {
		opts.HeavySizeMB = 8
	}
	heavy := ManySinkOutlierSpec(opts.Seed)
	if opts.HeavySinks != len(heavy.Sinks) {
		sinks := make([]SinkSpec, 0, opts.HeavySinks)
		for s := 0; s < opts.HeavySinks; s++ {
			sinks = append(sinks, SinkSpec{
				Flow:     FlowSharedConfig,
				Rule:     android.RuleCryptoECB,
				Insecure: s%3 != 0,
			})
		}
		heavy.Sinks = sinks
	}
	heavy.SizeMB = opts.HeavySizeMB
	out := []Spec{heavy}
	rng := rand.New(rand.NewSource(opts.Seed + 15485863))
	for a := 0; a < opts.SmallApps; a++ {
		spec := tenantSmallSpec(0, a, rng)
		spec.Name = fmt.Sprintf("com.heavytail.small%02d", a)
		out = append(out, spec)
	}
	return out
}
