package appgen

import (
	"fmt"
	"math/rand"

	"backdroid/internal/android"
	"backdroid/internal/apk"
	"backdroid/internal/dex"
	"backdroid/internal/manifest"
)

// Mutation selects how an app update (version N+1) differs from its base.
// Each kind models one real-world update pattern with a known blast
// radius, so the delta-analysis tests and benches can pin exactly how
// much re-analysis each one should trigger.
type Mutation int

// Mutation kinds.
const (
	// MutateChangeLiteral flips the security of one existing sink's
	// parameter literal (e.g. AES/ECB -> AES/GCM). Only the class holding
	// that sink changes; every other class is byte-identical.
	MutateChangeLiteral Mutation = iota + 1
	// MutateNewFlow appends a new exported, registered service whose
	// onCreate carries a fresh sink call. The base classes are
	// byte-identical; the manifest gains one component.
	MutateNewFlow
	// MutateAddClass appends an inert class that references no sink and
	// no app code — the "bundled SDK bumped a helper" update. Every sink
	// verdict is unchanged.
	MutateAddClass
)

var mutationNames = map[Mutation]string{
	MutateChangeLiteral: "change-literal",
	MutateNewFlow:       "new-flow",
	MutateAddClass:      "add-class",
}

// String names the mutation kind.
func (m Mutation) String() string {
	if n, ok := mutationNames[m]; ok {
		return n
	}
	return fmt.Sprintf("mutation(%d)", int(m))
}

// Mutations lists every mutation kind, for property tests and corpora.
func Mutations() []Mutation {
	return []Mutation{MutateChangeLiteral, MutateNewFlow, MutateAddClass}
}

// AppUpdateSpec describes version N+1 of a generated app.
type AppUpdateSpec struct {
	Base     Spec
	Mutation Mutation
	// TargetSink indexes Base.Sinks for MutateChangeLiteral; ignored by
	// the other kinds.
	TargetSink int
	// Seed drives the mutation's own randomness (new-flow literals). It
	// is deliberately separate from Base.Seed so the base classes come
	// out byte-identical to the base app.
	Seed int64
}

// GenerateUpdate builds version N+1 of the base app plus its ground
// truth. The update keeps the base app's name: it is the same app, and
// the analysis cache / job queue key on the name while the content
// fingerprint distinguishes the versions.
//
// The base portion of the update is regenerated from Base (generation is
// deterministic), so all unmutated classes are byte-identical to the
// base app's — the property the per-shard content addressing and the
// delta engine rely on.
func GenerateUpdate(u AppUpdateSpec) (*apk.App, *GroundTruth, error) {
	switch u.Mutation {
	case MutateChangeLiteral:
		return generateChangedLiteral(u)
	case MutateNewFlow:
		return generateNewFlow(u)
	case MutateAddClass:
		return generateAddedClass(u)
	default:
		return nil, nil, fmt.Errorf("appgen: unknown mutation %v", u.Mutation)
	}
}

// generateChangedLiteral regenerates the app with the target sink's
// Insecure flag flipped. emitSinkCall consumes the same rng draws for
// either security level, so the rng stream — and with it every other
// class — is unchanged; only the class containing the target sink
// differs.
func generateChangedLiteral(u AppUpdateSpec) (*apk.App, *GroundTruth, error) {
	if u.TargetSink < 0 || u.TargetSink >= len(u.Base.Sinks) {
		return nil, nil, fmt.Errorf("appgen: update target sink %d out of range (%d sinks)",
			u.TargetSink, len(u.Base.Sinks))
	}
	spec := u.Base
	spec.Sinks = append([]SinkSpec(nil), u.Base.Sinks...)
	spec.Sinks[u.TargetSink].Insecure = !spec.Sinks[u.TargetSink].Insecure
	return Generate(spec)
}

// generateNewFlow regenerates the base app and appends one exported
// registered service with its own sink flow. The service is an ICC entry
// point on its own (exported with an intent filter), so no existing
// class — in particular MainActivity — needs a driver edit.
func generateNewFlow(u AppUpdateSpec) (*apk.App, *GroundTruth, error) {
	app, truth, err := Generate(u.Base)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(u.Seed))
	spec := SinkSpec{
		Flow:     FlowICC,
		Rule:     android.RuleCryptoECB,
		Insecure: rng.Intn(2) == 0,
	}

	// A throwaway generator scoped to the new class: its rng cannot
	// perturb the (already built) base classes.
	g := &generator{spec: u.Base, rng: rng, truth: truth, pkg: u.Base.Name}
	svcName := g.cls("UpdateService")
	svc := dex.NewClass(svcName).Extends(android.ServiceClass)
	ctor := svc.Constructor()
	ctor.InvokeDirect(serviceInit, ctor.This()).ReturnVoid().Done()
	onCreate := svc.Method("onCreate", dex.Void)
	g.emitSinkCall(onCreate, spec)
	onCreate.ReturnVoid().Done()

	last := app.Dexes[len(app.Dexes)-1]
	if err := last.AddClass(svc.Build()); err != nil {
		return nil, nil, fmt.Errorf("appgen: update service: %w", err)
	}
	app.Manifest.Add(manifest.Service, svcName, manifest.IntentFilter{
		Actions: []string{u.Base.Name + ".action.UPDATE_WORK"},
	})
	g.addTruth(spec, svcName, "onCreate", true)
	return app, truth, nil
}

// generateAddedClass regenerates the base app and appends one inert
// arithmetic-only class. It is unreferenced, unregistered, and contains
// no invocation or literal any targeted search could match, so a sound
// delta analysis must reuse every settled sink verdict.
func generateAddedClass(u AppUpdateSpec) (*apk.App, *GroundTruth, error) {
	app, truth, err := Generate(u.Base)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(u.Seed))
	name := u.Base.Name + ".UpdatePatch"
	cb := dex.NewClass(name)
	mb := cb.StaticMethod("version", dex.Int)
	r0, r1 := mb.Reg(), mb.Reg()
	mb.Const(r0, int64(rng.Intn(1000)+1)).
		Const(r1, int64(rng.Intn(1000)+1)).
		Binop(dex.OpAdd, r0, r0, r1).
		Return(r0).
		Done()
	last := app.Dexes[len(app.Dexes)-1]
	if err := last.AddClass(cb.Build()); err != nil {
		return nil, nil, fmt.Errorf("appgen: update patch class: %w", err)
	}
	return app, truth, nil
}
