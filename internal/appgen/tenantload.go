package appgen

import (
	"fmt"
	"math/rand"

	"backdroid/internal/android"
)

// TenantWorkload is one tenant's generated submission stream for the
// multi-tenant scenario benches: its name and the app specs in submission
// order.
type TenantWorkload struct {
	Name  string
	Specs []Spec
}

// TenantWorkloadOptions configures TenantWorkloads.
type TenantWorkloadOptions struct {
	// Tenants is how many independent streams to generate (default 2).
	Tenants int
	// SmallApps is how many small apps each tenant submits besides its
	// heavy outlier (default 4).
	SmallApps int
	// Seed drives all sampling; each tenant derives its own stream from
	// it, so workloads are deterministic and tenant-independent.
	Seed int64
	// HeavySinks is the sink count of each tenant's heavy app (default
	// 40, a scaled-down ManySinkOutlierSpec so test runs stay fast; the
	// shape — many sinks funneling through a shared config chain — is
	// the same).
	HeavySinks int
}

// TenantWorkloads generates the mixed per-tenant workload of the
// fair-dispatch scenario: every tenant submits a stream of interleaved
// small apps plus one ManySinkOutlierSpec-style heavy app (placed first,
// the worst case for head-of-line blocking — a tenant that leads with its
// 500-app corpus's biggest member). Small apps differ across tenants
// (distinct seeds and names), so per-tenant detection reports are
// distinguishable end to end; all sampling is deterministic in
// opts.Seed.
func TenantWorkloads(opts TenantWorkloadOptions) []TenantWorkload {
	if opts.Tenants <= 0 {
		opts.Tenants = 2
	}
	if opts.SmallApps <= 0 {
		opts.SmallApps = 4
	}
	if opts.HeavySinks <= 0 {
		opts.HeavySinks = 40
	}
	out := make([]TenantWorkload, opts.Tenants)
	for ti := range out {
		rng := rand.New(rand.NewSource(opts.Seed + int64(ti)*104729))
		w := TenantWorkload{Name: fmt.Sprintf("tenant%02d", ti)}
		w.Specs = append(w.Specs, tenantHeavySpec(ti, opts.Seed, opts.HeavySinks))
		for a := 0; a < opts.SmallApps; a++ {
			w.Specs = append(w.Specs, tenantSmallSpec(ti, a, rng))
		}
		out[ti] = w
	}
	return out
}

// tenantHeavySpec is the per-tenant many-sink outlier: a large app whose
// sinks all flow through the app-shared configuration chain, exactly the
// ManySinkOutlierSpec shape at configurable sink count.
func tenantHeavySpec(tenant int, seed int64, sinkCount int) Spec {
	sinks := make([]SinkSpec, 0, sinkCount)
	for s := 0; s < sinkCount; s++ {
		sinks = append(sinks, SinkSpec{
			Flow:     FlowSharedConfig,
			Rule:     android.RuleCryptoECB,
			Insecure: s%3 != 0,
		})
	}
	return Spec{
		Name:   fmt.Sprintf("com.tenant%02d.heavy", tenant),
		Seed:   seed + int64(tenant)*7919 + 1,
		SizeMB: 6,
		Sinks:  sinks,
	}
}

// tenantSmallSpec is one light interactive-style submission: a small app
// with a couple of mixed-shape flows.
func tenantSmallSpec(tenant, idx int, rng *rand.Rand) Spec {
	flows := []Flow{FlowDirect, FlowThread, FlowClinit, FlowCallback, FlowDirectPair}
	n := 1 + rng.Intn(3)
	sinks := make([]SinkSpec, 0, n)
	for s := 0; s < n; s++ {
		rule := android.RuleCryptoECB
		if rng.Float64() < 0.3 {
			rule = android.RuleSSLAllowAll
		}
		sinks = append(sinks, SinkSpec{
			Flow:     flows[rng.Intn(len(flows))],
			Rule:     rule,
			Insecure: rng.Float64() < 0.4,
		})
	}
	return Spec{
		Name:   fmt.Sprintf("com.tenant%02d.small%02d", tenant, idx),
		Seed:   rng.Int63(),
		SizeMB: 0.8 + rng.Float64()*1.5,
		Sinks:  sinks,
	}
}
