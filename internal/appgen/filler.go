package appgen

import (
	"fmt"

	"backdroid/internal/dex"
)

const (
	fillerMethodsPerClass = 40
	fillerDeadEvery       = 7 // every Nth filler method is dead code
)

// buildFiller emits filler code up to the app's instruction budget. The
// filler is deliberately shaped like real app code from the analyses'
// point of view:
//
//   - it is reachable from MainActivity.onCreate through a long static
//     call chain, so a whole-app analysis must visit all of it;
//   - every step performs an interface call whose implementer count grows
//     with app size, so CHA fan-out (and therefore whole-app dataflow
//     cost) grows super-linearly with size — the mechanism behind the
//     paper's large-app timeouts;
//   - a fraction is dead code, which apps always carry;
//   - none of it references sink APIs, so targeted analysis can skip it.
func (g *generator) buildFiller() {
	remaining := g.instrBudget - g.file.InstructionCount()
	if remaining < 60 {
		return
	}

	implCount := g.spec.FanOut
	if implCount <= 0 {
		implCount = int(g.spec.SizeMB / 2)
	}
	if implCount < 3 {
		implCount = 3
	}
	if implCount > 400 {
		implCount = 400
	}

	ifaceName := g.cls("IFiller")
	g.add(dex.NewInterface(ifaceName).AbstractMethod("work", dex.Int, dex.Int))
	workRef := dex.NewMethodRef(ifaceName, "work", dex.Int, dex.Int)

	// Implementations with small arithmetic bodies.
	for i := 0; i < implCount; i++ {
		implName := g.cls(fmt.Sprintf("FillerImpl%d", i))
		cb := dex.NewClass(implName).Implements(ifaceName)
		ctor := cb.Constructor()
		ctor.InvokeDirect(objInit, ctor.This()).ReturnVoid().Done()
		mb := cb.Method("work", dex.Int, dex.Int)
		x := mb.Param(0)
		t1, t2 := mb.Reg(), mb.Reg()
		mb.Const(t1, int64(g.rng.Intn(97)+1)).
			Binop(dex.OpAdd, t2, x, t1).
			Binop(dex.OpMul, t2, t2, t1).
			Binop(dex.OpXor, t2, t2, x).
			AddLit(t2, t2, int64(i)).
			Return(t2).Done()
		g.add(cb)
	}

	// Environment holder providing the interface receiver.
	envName := g.cls("FillerEnv")
	env := dex.NewClass(envName).StaticField("impl", dex.T(ifaceName))
	ci := env.StaticInitializer()
	r := ci.Reg()
	chosen := g.cls(fmt.Sprintf("FillerImpl%d", g.rng.Intn(implCount)))
	ci.New(r, chosen).
		InvokeDirect(dex.NewMethodRef(chosen, "<init>", dex.Void), r).
		SPut(r, dex.NewFieldRef(envName, "impl", dex.T(ifaceName))).
		ReturnVoid().Done()
	g.add(env)
	implField := dex.NewFieldRef(envName, "impl", dex.T(ifaceName))

	remaining = g.instrBudget - g.file.InstructionCount()
	const instrsPerStep = 13
	steps := remaining / instrsPerStep
	if steps < 1 {
		steps = 1
	}

	type stepRef struct {
		ref  dex.MethodRef
		dead bool
	}
	var refs []stepRef
	classCount := (steps + fillerMethodsPerClass - 1) / fillerMethodsPerClass

	for c := 0; c < classCount; c++ {
		className := g.cls(fmt.Sprintf("FillerChain%d", c))
		cb := dex.NewClass(className)
		for m := 0; m < fillerMethodsPerClass && c*fillerMethodsPerClass+m < steps; m++ {
			idx := c*fillerMethodsPerClass + m
			dead := idx%fillerDeadEvery == fillerDeadEvery-1
			name := fmt.Sprintf("step%d", m)
			if dead {
				name = fmt.Sprintf("dead%d", m)
			}
			mb := cb.StaticMethod(name, dex.Int, dex.Int)
			x := mb.Param(0)
			a, b, impl, out := mb.Reg(), mb.Reg(), mb.Reg(), mb.Reg()
			mb.Const(a, int64(g.rng.Intn(211)+1)).
				Binop(dex.OpAdd, b, x, a).
				Binop(dex.OpMul, b, b, a).
				SGet(impl, implField).
				InvokeInterface(workRef, impl, b).
				MoveResult(out).
				IfZ(dex.OpIfEqz, out, "skip").
				AddLit(out, out, 1).
				Label("skip").
				Binop(dex.OpXor, out, out, x).
				Return(out).Done()
			refs = append(refs, stepRef{ref: mb.Ref(), dead: dead})
		}
		g.add(cb)
	}

	// Chain the live steps together: step_i tail-calls step_{i+1} through
	// a driver in MainActivity.onCreate. To keep bodies single-pass we
	// instead invoke the chain head and let each step feed the next via
	// the driver loop below.
	var live []dex.MethodRef
	for _, s := range refs {
		if !s.dead {
			live = append(live, s.ref)
		}
	}
	if len(live) == 0 {
		return
	}
	// Driver class walks the chain: drive(k) calls a window of steps and
	// recurses into the next driver. Windows keep method sizes bounded.
	const window = 24
	driverName := g.cls("FillerDriver")
	db := dex.NewClass(driverName)
	numDrivers := (len(live) + window - 1) / window
	for d := 0; d < numDrivers; d++ {
		mb := db.StaticMethod(fmt.Sprintf("drive%d", d), dex.Int, dex.Int)
		x := mb.Param(0)
		acc := mb.Reg()
		mb.Move(acc, x)
		for wi := d * window; wi < (d+1)*window && wi < len(live); wi++ {
			mb.InvokeStatic(live[wi], acc).MoveResult(acc)
		}
		if d+1 < numDrivers {
			mb.InvokeStatic(dex.NewMethodRef(driverName, fmt.Sprintf("drive%d", d+1), dex.Int, dex.Int), acc).
				MoveResult(acc)
		}
		mb.Return(acc).Done()
	}
	g.add(db)

	oc := g.mainOnCreate
	seedReg := oc.Reg()
	res := oc.Reg()
	oc.Const(seedReg, int64(g.rng.Intn(1000))).
		InvokeStatic(dex.NewMethodRef(driverName, "drive0", dex.Int, dex.Int), seedReg).
		MoveResult(res)

	g.buildSpray(live)
}

// buildSpray feeds distinct constants into a DataDiversity-controlled
// prefix of the filler chain. Each sprayed step's incoming value set then
// carries one more distinct constant, and the chain's arithmetic makes the
// sets (and whole-app constant-set evaluation cost) grow along the chain.
func (g *generator) buildSpray(live []dex.MethodRef) {
	sprayCount := int(g.spec.DataDiversity * float64(len(live)))
	if sprayCount <= 0 {
		return
	}
	if sprayCount > len(live) {
		sprayCount = len(live)
	}
	const window = 24
	sprayName := g.cls("FillerSpray")
	sb := dex.NewClass(sprayName)
	numSprays := (sprayCount + window - 1) / window
	for d := 0; d < numSprays; d++ {
		mb := sb.StaticMethod(fmt.Sprintf("spray%d", d), dex.Void)
		c, r := mb.Reg(), mb.Reg()
		for wi := d * window; wi < (d+1)*window && wi < sprayCount; wi++ {
			mb.Const(c, int64(wi*7919+13)).
				InvokeStatic(live[wi], c).
				MoveResult(r)
		}
		if d+1 < numSprays {
			mb.InvokeStatic(dex.NewMethodRef(sprayName, fmt.Sprintf("spray%d", d+1), dex.Void))
		}
		mb.ReturnVoid().Done()
	}
	g.add(sb)
	g.mainOnCreate.InvokeStatic(dex.NewMethodRef(sprayName, "spray0", dex.Void))
}
