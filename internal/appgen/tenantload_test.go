package appgen

import (
	"fmt"
	"testing"
)

func TestTenantWorkloadsShape(t *testing.T) {
	ws := TenantWorkloads(TenantWorkloadOptions{Tenants: 3, SmallApps: 4, Seed: 99})
	if len(ws) != 3 {
		t.Fatalf("tenants = %d", len(ws))
	}
	names := make(map[string]bool)
	for ti, w := range ws {
		if w.Name != fmt.Sprintf("tenant%02d", ti) {
			t.Fatalf("tenant %d named %q", ti, w.Name)
		}
		if len(w.Specs) != 5 {
			t.Fatalf("tenant %s has %d specs, want 1 heavy + 4 small", w.Name, len(w.Specs))
		}
		heavy := w.Specs[0]
		if len(heavy.Sinks) < 20 {
			t.Fatalf("tenant %s heavy app has only %d sinks", w.Name, len(heavy.Sinks))
		}
		for _, sk := range heavy.Sinks {
			if sk.Flow != FlowSharedConfig {
				t.Fatalf("heavy app sink flow = %v, want shared-config", sk.Flow)
			}
		}
		for _, spec := range w.Specs {
			if names[spec.Name] {
				t.Fatalf("duplicate app name %q across tenants", spec.Name)
			}
			names[spec.Name] = true
			if spec.SizeMB <= 0 || len(spec.Sinks) == 0 {
				t.Fatalf("degenerate spec %+v", spec)
			}
		}
		for _, small := range w.Specs[1:] {
			if small.SizeMB >= heavy.SizeMB {
				t.Fatalf("small app %s (%.1f MB) not smaller than heavy (%.1f MB)",
					small.Name, small.SizeMB, heavy.SizeMB)
			}
		}
	}
}

// TestTenantWorkloadsDeterministic pins that workloads are a pure
// function of the options — the fair-dispatch bench depends on it.
func TestTenantWorkloadsDeterministic(t *testing.T) {
	opts := TenantWorkloadOptions{Tenants: 2, SmallApps: 3, Seed: 5}
	a := TenantWorkloads(opts)
	b := TenantWorkloads(opts)
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatal("TenantWorkloads not deterministic")
	}
	c := TenantWorkloads(TenantWorkloadOptions{Tenants: 2, SmallApps: 3, Seed: 6})
	if fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", c) {
		t.Fatal("TenantWorkloads insensitive to the seed")
	}
}

// TestTenantWorkloadAppsGenerate pins that every spec actually generates
// and carries ground truth.
func TestTenantWorkloadAppsGenerate(t *testing.T) {
	for _, w := range TenantWorkloads(TenantWorkloadOptions{Tenants: 2, SmallApps: 2, Seed: 11, HeavySinks: 8}) {
		for _, spec := range w.Specs {
			app, truth, err := Generate(spec)
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			if app == nil || len(truth.Sinks) == 0 {
				t.Fatalf("%s generated no ground truth", spec.Name)
			}
		}
	}
}
