// Package appgen deterministically generates synthetic Android apps with
// known ground truth. It stands in for the paper's Google-Play corpus
// (Sec. VI-A): real APKs cannot ship with this repository, and — more
// importantly — real APKs have no ground truth to score detection against.
//
// Each generated app contains:
//   - sink flows of configurable shapes (the Flow kinds below), covering
//     every phenomenon the paper's evaluation exercises: direct calls,
//     asynchronous Executor flows, UI callbacks, Thread subclasses, static
//     initializers, ICC, skipped third-party libraries, unregistered
//     components, dead code, subclassed sink wrappers and polymorphism;
//   - filler code calibrated to a target "app size" in MB
//     (InstructionsPerMB), kept reachable from the entry points and shaped
//     with interface fan-out so whole-app analysis cost grows
//     super-linearly with size, as it does for real apps;
//   - optionally corrupted methods that abort whole-app analyses but are
//     invisible to targeted analysis.
package appgen

import (
	"fmt"
	"math/rand"

	"backdroid/internal/android"
	"backdroid/internal/apk"
	"backdroid/internal/dex"
	"backdroid/internal/manifest"
)

// InstructionsPerMB maps the nominal app size to generated code volume.
// Real APK bytes per instruction differ, but the analyses only see code, so
// a fixed density preserves the size-vs-cost relationship (DESIGN.md §5).
const InstructionsPerMB = 1500

// Flow identifies the shape of one embedded sink flow.
type Flow int

// Flow kinds.
const (
	FlowDirect        Flow = iota + 1 // entry -> static helper -> sink
	FlowAsyncExecutor                 // Runnable via Executor.execute (baseline gap)
	FlowCallback                      // View$OnClickListener.onClick (baseline gap)
	FlowThread                        // Thread subclass run() (both tools handle)
	FlowClinit                        // sink value from a <clinit> static field
	FlowICC                           // sink in an ICC-started service
	FlowSkippedLib                    // sink inside a liblist package (baseline skips)
	FlowUnregistered                  // sink in an unregistered component (baseline FP)
	FlowDead                          // sink in dead code (neither tool should report)
	FlowSubclassSink                  // sink via app subclass of the sink class (BackDroid default FN)
	FlowChildClass                    // inherited method invoked via child signature
	FlowSuperPoly                     // override invoked via super-class signature
	FlowRecursive                     // sink inside a mutually recursive helper pair
	FlowDirectPair                    // two sink calls in one helper method
	FlowSharedConfig                  // sink parameter flows through a shared config chain
)

var flowNames = map[Flow]string{
	FlowDirect:        "direct",
	FlowAsyncExecutor: "async-executor",
	FlowCallback:      "callback",
	FlowThread:        "thread",
	FlowClinit:        "clinit",
	FlowICC:           "icc",
	FlowSkippedLib:    "skipped-lib",
	FlowUnregistered:  "unregistered",
	FlowDead:          "dead",
	FlowSubclassSink:  "subclass-sink",
	FlowChildClass:    "child-class",
	FlowSuperPoly:     "super-poly",
	FlowRecursive:     "recursive",
	FlowDirectPair:    "direct-pair",
	FlowSharedConfig:  "shared-config",
}

// String names the flow kind.
func (f Flow) String() string {
	if n, ok := flowNames[f]; ok {
		return n
	}
	return fmt.Sprintf("flow(%d)", int(f))
}

// SinkSpec requests one sink flow in the generated app.
type SinkSpec struct {
	Flow     Flow
	Rule     android.RuleKind
	Insecure bool // embed an insecure parameter value
}

// Spec describes one app to generate.
type Spec struct {
	Name           string
	Seed           int64
	SizeMB         float64
	Sinks          []SinkSpec
	CorruptMethods int  // reachable methods that fail IR translation
	MultiDex       bool // split classes across two dex files

	// DataDiversity in [0,1] controls how many distinct constants flow
	// into the filler call chain. Whole-app constant propagation cost
	// grows with the value sets this produces (the analogue of real apps
	// whose points-to/value sets explode under Amandroid), while targeted
	// analysis never touches the filler. 0 keeps the filler value-monotone.
	DataDiversity float64

	// FanOut is the number of implementations behind the filler's
	// interface call sites — the app's "framework heaviness". Whole-app
	// CHA resolves every such site to all FanOut targets, so dataflow and
	// context-sensitive call graph costs scale with it; targeted analysis
	// is unaffected. 0 picks a small size-derived default. Apps bundling
	// large ad/analytics SDKs sit at the high end; they are what makes
	// whole-app tools time out regardless of raw APK size.
	FanOut int
}

// SinkTruth is the ground truth of one embedded sink.
type SinkTruth struct {
	Spec      SinkSpec
	Class     string // class containing the sink call
	Method    string // method containing the sink call
	Reachable bool   // truly reachable from valid entry points
	Insecure  bool   // truly carries an insecure parameter
}

// GroundTruth aggregates an app's embedded sinks.
type GroundTruth struct {
	App   string
	Sinks []SinkTruth
}

// generator carries the in-progress state.
type generator struct {
	spec  Spec
	rng   *rand.Rand
	file  *dex.File
	man   *manifest.Manifest
	truth *GroundTruth
	pkg   string

	mainOnCreate *dex.MethodBuilder // drivers are appended here
	mainBuilder  *dex.ClassBuilder
	instrBudget  int
	err          error

	// sharedConfig caches the per-security-level shared configuration
	// chain heads, emitted at most once per app (see flowSharedConfig).
	sharedConfig map[bool]dex.MethodRef
}

// Generate builds the app and its ground truth.
func Generate(spec Spec) (*apk.App, *GroundTruth, error) {
	if spec.Name == "" {
		return nil, nil, fmt.Errorf("appgen: spec needs a name")
	}
	if spec.SizeMB <= 0 {
		spec.SizeMB = 1
	}
	g := &generator{
		spec:  spec,
		rng:   rand.New(rand.NewSource(spec.Seed)),
		file:  dex.NewFile(),
		man:   manifest.New(spec.Name),
		truth: &GroundTruth{App: spec.Name},
		pkg:   spec.Name,
	}
	g.instrBudget = int(spec.SizeMB * InstructionsPerMB)

	g.buildMainActivity()
	for i, s := range spec.Sinks {
		g.buildFlow(i, s)
	}
	g.buildCorruptMethods()
	g.finishMainActivity()
	g.buildFiller()
	if g.err != nil {
		return nil, nil, g.err
	}

	dexes := []*dex.File{g.file}
	if spec.MultiDex {
		dexes = splitDex(g.file)
	}
	return apk.New(spec.Name, g.man, dexes...), g.truth, nil
}

func (g *generator) cls(name string) string { return g.pkg + "." + name }

func (g *generator) add(b *dex.ClassBuilder) {
	if err := g.file.AddClass(b.Build()); err != nil && g.err == nil {
		g.err = fmt.Errorf("appgen: %w", err)
	}
}

func (g *generator) addTruth(spec SinkSpec, class, method string, reachable bool) {
	g.truth.Sinks = append(g.truth.Sinks, SinkTruth{
		Spec:      spec,
		Class:     class,
		Method:    method,
		Reachable: reachable,
		Insecure:  spec.Insecure && reachable,
	})
}

func (g *generator) buildMainActivity() {
	main := dex.NewClass(g.cls("MainActivity")).Extends(android.ActivityClass)
	ctor := main.Constructor()
	ctor.InvokeDirect(dex.NewMethodRef(android.ActivityClass, "<init>", dex.Void), ctor.This()).
		ReturnVoid().Done()
	g.mainBuilder = main
	g.mainOnCreate = main.Method("onCreate", dex.Void, dex.T(android.BundleClass))
	g.man.Add(manifest.Activity, g.cls("MainActivity"), manifest.IntentFilter{
		Actions:    []string{"android.intent.action.MAIN"},
		Categories: []string{"android.intent.category.LAUNCHER"},
	})
}

func (g *generator) finishMainActivity() {
	g.mainOnCreate.ReturnVoid().Done()
	g.add(g.mainBuilder)
}

// sinkParamValue returns the parameter string for crypto sinks.
func (g *generator) cryptoValue(insecure bool) string {
	if insecure {
		return []string{"AES/ECB/PKCS5Padding", "AES", "DES/ECB/NoPadding"}[g.rng.Intn(3)]
	}
	return []string{"AES/CBC/PKCS5Padding", "AES/GCM/NoPadding", "RSA/OAEP"}[g.rng.Intn(3)]
}

// emitSinkCall writes the sink invocation into a method body under
// construction and returns nothing; the caller declares truth separately.
func (g *generator) emitSinkCall(mb *dex.MethodBuilder, spec SinkSpec) {
	switch spec.Rule {
	case android.RuleCryptoECB:
		s, c := mb.Reg(), mb.Reg()
		mb.ConstString(s, g.cryptoValue(spec.Insecure)).
			InvokeStatic(android.CipherGetInstance, s).
			MoveResult(c)
	case android.RuleSSLAllowAll:
		fac, ver := mb.Reg(), mb.Reg()
		mb.New(fac, android.SSLSocketFactoryClass).
			InvokeDirect(dex.NewMethodRef(android.SSLSocketFactoryClass, "<init>", dex.Void), fac)
		if spec.Insecure {
			mb.SGet(ver, android.AllowAllVerifierField)
		} else {
			mb.ConstNull(ver)
		}
		mb.InvokeVirtual(android.SSLSetHostnameVerifier, fac, ver)
	}
}

// buildCorruptMethods emits reachable methods whose bodies fail IR
// translation (an orphan move-result), aborting whole-app analyses.
func (g *generator) buildCorruptMethods() {
	for i := 0; i < g.spec.CorruptMethods; i++ {
		name := fmt.Sprintf("Corrupt%d", i)
		cb := dex.NewClass(g.cls(name))
		m := &dex.Method{
			Ref:       dex.NewMethodRef(g.cls(name), "broken", dex.Void),
			Flags:     dex.AccPublic | dex.AccStatic,
			Registers: 2,
			Code: []dex.Instruction{
				{Op: dex.OpMoveResult, A: 0}, // orphan move-result
				{Op: dex.OpReturnVoid},
			},
		}
		built := cb.Build()
		built.Methods = append(built.Methods, m)
		if err := g.file.AddClass(built); err != nil && g.err == nil {
			g.err = err
		}
		g.mainOnCreate.InvokeStatic(m.Ref)
	}
}

// splitDex partitions classes into two dex files (multidex).
func splitDex(f *dex.File) []*dex.File {
	classes := f.Classes()
	half := len(classes) / 2
	if half == 0 {
		return []*dex.File{f}
	}
	d1, d2 := dex.NewFile(), dex.NewFile()
	for i, c := range classes {
		target := d1
		if i >= half {
			target = d2
		}
		// Errors are impossible here: the source file had unique names.
		_ = target.AddClass(c)
	}
	return []*dex.File{d1, d2}
}
