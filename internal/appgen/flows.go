package appgen

import (
	"fmt"

	"backdroid/internal/android"
	"backdroid/internal/dex"
	"backdroid/internal/manifest"
)

var (
	objInit     = dex.NewMethodRef("java.lang.Object", "<init>", dex.Void)
	activInit   = dex.NewMethodRef(android.ActivityClass, "<init>", dex.Void)
	serviceInit = dex.NewMethodRef(android.ServiceClass, "<init>", dex.Void)
	threadInit  = dex.NewMethodRef("java.lang.Thread", "<init>", dex.Void)
	threadStart = dex.NewMethodRef("java.lang.Thread", "start", dex.Void)
	execExecute = dex.NewMethodRef(android.ExecutorIface, "execute", dex.Void,
		dex.T(android.RunnableIface))
	viewInit           = dex.NewMethodRef(android.ViewClass, "<init>", dex.Void)
	setOnClickListener = dex.NewMethodRef(android.ViewClass, "setOnClickListener", dex.Void,
		dex.T(android.OnClickIface))
	startServiceRef = dex.NewMethodRef(android.ContextClass, "startService",
		dex.T("android.content.ComponentName"), dex.T(android.IntentClass))
)

// buildFlow emits the class cluster of one sink flow and hooks its driver
// into MainActivity.onCreate.
func (g *generator) buildFlow(i int, spec SinkSpec) {
	switch spec.Flow {
	case FlowDirect:
		g.flowDirect(i, spec)
	case FlowAsyncExecutor:
		g.flowAsyncExecutor(i, spec)
	case FlowCallback:
		g.flowCallback(i, spec)
	case FlowThread:
		g.flowThread(i, spec)
	case FlowClinit:
		g.flowClinit(i, spec)
	case FlowICC:
		g.flowICC(i, spec)
	case FlowSkippedLib:
		g.flowSkippedLib(i, spec)
	case FlowUnregistered:
		g.flowUnregistered(i, spec)
	case FlowDead:
		g.flowDead(i, spec)
	case FlowSubclassSink:
		g.flowSubclassSink(i, spec)
	case FlowChildClass:
		g.flowChildClass(i, spec)
	case FlowSuperPoly:
		g.flowSuperPoly(i, spec)
	case FlowRecursive:
		g.flowRecursive(i, spec)
	case FlowDirectPair:
		g.flowDirectPair(i, spec)
	case FlowSharedConfig:
		g.flowSharedConfig(i, spec)
	default:
		if g.err == nil {
			g.err = fmt.Errorf("appgen: unknown flow %v", spec.Flow)
		}
	}
}

func (g *generator) flowDirect(i int, spec SinkSpec) {
	name := fmt.Sprintf("DirectHelper%d", i)
	cb := dex.NewClass(g.cls(name))
	mb := cb.StaticMethod("doWork", dex.Void)
	g.emitSinkCall(mb, spec)
	mb.ReturnVoid().Done()
	g.add(cb)
	g.mainOnCreate.InvokeStatic(dex.NewMethodRef(g.cls(name), "doWork", dex.Void))
	g.addTruth(spec, g.cls(name), "doWork", true)
}

// Shared-config chain parameters: the chain is sharedConfigDepth contained
// static methods deep, and every step carries sharedConfigFiller untainted
// statements that the backward scan must visit (charged) but never records
// — the shape that makes re-slicing the chain per sink expensive and
// interning it per app cheap.
const (
	sharedConfigDepth  = 10
	sharedConfigFiller = 25
)

// sharedConfigRef returns (emitting on first use) the head of the shared
// configuration chain for the given security level:
// CryptoConfig{Secure,Insecure}.algorithm() -> step1() -> ... -> stepN(),
// where the tail returns the crypto transformation string. Every
// FlowSharedConfig sink of the app calls the same head, so all their
// backward slices traverse one shared subgraph — the many-sink outlier
// shape the per-app SSG (slice interning + single forward pass) exploits.
func (g *generator) sharedConfigRef(insecure bool) dex.MethodRef {
	if ref, ok := g.sharedConfig[insecure]; ok {
		return ref
	}
	level, value := "Secure", "AES/GCM/NoPadding"
	if insecure {
		level, value = "Insecure", "AES/ECB/PKCS5Padding"
	}
	clsName := g.cls("CryptoConfig" + level)
	strT := dex.T("java.lang.String")
	cb := dex.NewClass(clsName)

	filler := func(mb *dex.MethodBuilder, step int) {
		for k := 0; k < sharedConfigFiller; k++ {
			mb.ConstString(mb.Reg(), fmt.Sprintf("cfg-%s-%d-%d", level, step, k))
		}
	}
	// Tail: the literal transformation value.
	tailName := fmt.Sprintf("step%d", sharedConfigDepth)
	tail := cb.StaticMethod(tailName, strT)
	v := tail.Reg()
	tail.ConstString(v, value)
	filler(tail, sharedConfigDepth)
	tail.Return(v).Done()

	// Intermediate steps, each forwarding the next step's return value.
	next := dex.NewMethodRef(clsName, tailName, strT)
	for step := sharedConfigDepth - 1; step >= 1; step-- {
		name := fmt.Sprintf("step%d", step)
		mb := cb.StaticMethod(name, strT)
		r := mb.Reg()
		mb.InvokeStatic(next).MoveResult(r)
		filler(mb, step)
		out := mb.Reg()
		mb.Move(out, r).Return(out).Done()
		next = dex.NewMethodRef(clsName, name, strT)
	}

	head := cb.StaticMethod("algorithm", strT)
	r := head.Reg()
	head.InvokeStatic(next).MoveResult(r)
	filler(head, 0)
	head.Return(r).Done()
	g.add(cb)

	ref := dex.NewMethodRef(clsName, "algorithm", strT)
	if g.sharedConfig == nil {
		g.sharedConfig = make(map[bool]dex.MethodRef)
	}
	g.sharedConfig[insecure] = ref
	return ref
}

// flowSharedConfig emits one sink whose parameter is resolved through the
// app-shared configuration chain (always a crypto sink: the chain returns
// the transformation string).
func (g *generator) flowSharedConfig(i int, spec SinkSpec) {
	cfg := g.sharedConfigRef(spec.Insecure)
	name := fmt.Sprintf("SharedSink%d", i)
	cb := dex.NewClass(g.cls(name))
	mb := cb.StaticMethod("doWork", dex.Void)
	s, c := mb.Reg(), mb.Reg()
	mb.InvokeStatic(cfg).
		MoveResult(s).
		InvokeStatic(android.CipherGetInstance, s).
		MoveResult(c).
		ReturnVoid().Done()
	g.add(cb)
	g.mainOnCreate.InvokeStatic(dex.NewMethodRef(g.cls(name), "doWork", dex.Void))
	g.addTruth(spec, g.cls(name), "doWork", true)
}

func (g *generator) flowAsyncExecutor(i int, spec SinkSpec) {
	anonName := g.cls(fmt.Sprintf("AsyncJob%d", i))
	anon := dex.NewClass(anonName).Implements(android.RunnableIface)
	ctor := anon.Constructor()
	ctor.InvokeDirect(objInit, ctor.This()).ReturnVoid().Done()
	run := anon.Method("run", dex.Void)
	g.emitSinkCall(run, spec)
	run.ReturnVoid().Done()
	g.add(anon)

	utilName := g.cls(fmt.Sprintf("AsyncUtil%d", i))
	util := dex.NewClass(utilName).
		StaticField("executor", dex.T(android.ExecutorIface))
	rib := util.StaticMethod("runInBackground", dex.Void, dex.T(android.RunnableIface))
	ex := rib.Reg()
	rib.SGet(ex, dex.NewFieldRef(utilName, "executor", dex.T(android.ExecutorIface))).
		InvokeInterface(execExecute, ex, rib.Param(0)).
		ReturnVoid().Done()
	g.add(util)

	oc := g.mainOnCreate
	r := oc.Reg()
	oc.New(r, anonName).
		InvokeDirect(dex.NewMethodRef(anonName, "<init>", dex.Void), r).
		InvokeStatic(dex.NewMethodRef(utilName, "runInBackground", dex.Void, dex.T(android.RunnableIface)), r)
	g.addTruth(spec, anonName, "run", true)
}

func (g *generator) flowCallback(i int, spec SinkSpec) {
	lName := g.cls(fmt.Sprintf("ClickListener%d", i))
	l := dex.NewClass(lName).Implements(android.OnClickIface)
	ctor := l.Constructor()
	ctor.InvokeDirect(objInit, ctor.This()).ReturnVoid().Done()
	onClick := l.Method("onClick", dex.Void, dex.T(android.ViewClass))
	g.emitSinkCall(onClick, spec)
	onClick.ReturnVoid().Done()
	g.add(l)

	oc := g.mainOnCreate
	view, lst := oc.Reg(), oc.Reg()
	oc.New(view, android.ViewClass).
		InvokeDirect(viewInit, view).
		New(lst, lName).
		InvokeDirect(dex.NewMethodRef(lName, "<init>", dex.Void), lst).
		InvokeVirtual(setOnClickListener, view, lst)
	g.addTruth(spec, lName, "onClick", true)
}

func (g *generator) flowThread(i int, spec SinkSpec) {
	tName := g.cls(fmt.Sprintf("WorkThread%d", i))
	tc := dex.NewClass(tName).Extends("java.lang.Thread")
	ctor := tc.Constructor()
	ctor.InvokeDirect(threadInit, ctor.This()).ReturnVoid().Done()
	run := tc.Method("run", dex.Void)
	g.emitSinkCall(run, spec)
	run.ReturnVoid().Done()
	g.add(tc)

	oc := g.mainOnCreate
	th := oc.Reg()
	oc.New(th, tName).
		InvokeDirect(dex.NewMethodRef(tName, "<init>", dex.Void), th).
		InvokeVirtual(threadStart, th)
	g.addTruth(spec, tName, "run", true)
}

func (g *generator) flowClinit(i int, spec SinkSpec) {
	cfgName := g.cls(fmt.Sprintf("Config%d", i))
	cfg := dex.NewClass(cfgName).StaticField("MODE", dex.StringT)
	ci := cfg.StaticInitializer()
	r := ci.Reg()
	ci.ConstString(r, g.cryptoValue(spec.Insecure)).
		SPut(r, dex.NewFieldRef(cfgName, "MODE", dex.StringT)).
		ReturnVoid().Done()
	g.add(cfg)

	hName := g.cls(fmt.Sprintf("ClinitHelper%d", i))
	hb := dex.NewClass(hName)
	mb := hb.StaticMethod("doWork", dex.Void)
	m, c := mb.Reg(), mb.Reg()
	mb.SGet(m, dex.NewFieldRef(cfgName, "MODE", dex.StringT)).
		InvokeStatic(android.CipherGetInstance, m).
		MoveResult(c).
		ReturnVoid().Done()
	g.add(hb)

	g.mainOnCreate.InvokeStatic(dex.NewMethodRef(hName, "doWork", dex.Void))
	g.addTruth(spec, hName, "doWork", true)
}

func (g *generator) flowICC(i int, spec SinkSpec) {
	svcName := g.cls(fmt.Sprintf("WorkService%d", i))
	svc := dex.NewClass(svcName).Extends(android.ServiceClass)
	ctor := svc.Constructor()
	ctor.InvokeDirect(serviceInit, ctor.This()).ReturnVoid().Done()
	onCreate := svc.Method("onCreate", dex.Void)
	g.emitSinkCall(onCreate, spec)
	onCreate.ReturnVoid().Done()
	g.add(svc)
	g.man.Add(manifest.Service, svcName)

	oc := g.mainOnCreate
	intent, klass := oc.Reg(), oc.Reg()
	oc.New(intent, android.IntentClass).
		ConstClass(klass, svcName).
		InvokeDirect(android.IntentCtorExplicit, intent, oc.This(), klass).
		InvokeVirtual(startServiceRef, oc.This(), intent)
	g.addTruth(spec, svcName, "onCreate", true)
}

// flowRecursive puts the sink inside a pair of mutually recursive helpers:
// backward search returns to a method already on the path, which the
// engine must cut and count (the CrossBackward loops of Sec. IV-F; real
// apps made 60% of the paper's corpus trip loop detection).
func (g *generator) flowRecursive(i int, spec SinkSpec) {
	name := g.cls(fmt.Sprintf("RecursiveHelper%d", i))
	aRef := dex.NewMethodRef(name, "stepA", dex.Void)
	bRef := dex.NewMethodRef(name, "stepB", dex.Void)

	cb := dex.NewClass(name)
	sa := cb.StaticMethod("stepA", dex.Void)
	g.emitSinkCall(sa, spec)
	sa.InvokeStatic(bRef).ReturnVoid().Done()
	sb := cb.StaticMethod("stepB", dex.Void)
	sb.InvokeStatic(aRef).ReturnVoid().Done()
	g.add(cb)

	g.mainOnCreate.InvokeStatic(aRef)
	g.addTruth(spec, name, "stepA", true)
}

// flowDirectPair emits two sink calls in one method, so the second one is
// answered by the sink reachability cache (the Sec. IV-F sink API call
// caching; the paper measured 13.86% of sink calls cached on average).
func (g *generator) flowDirectPair(i int, spec SinkSpec) {
	name := g.cls(fmt.Sprintf("PairHelper%d", i))
	cb := dex.NewClass(name)
	mb := cb.StaticMethod("doBoth", dex.Void)
	g.emitSinkCall(mb, spec)
	g.emitSinkCall(mb, spec)
	mb.ReturnVoid().Done()
	g.add(cb)
	g.mainOnCreate.InvokeStatic(dex.NewMethodRef(name, "doBoth", dex.Void))
	g.addTruth(spec, name, "doBoth", true)
	g.addTruth(spec, name, "doBoth", true)
}

func (g *generator) flowSkippedLib(i int, spec SinkSpec) {
	// The class lives in a liblist package the baseline skips entirely.
	libPkgs := []string{"com.facebook.crypto", "com.amazon.identity", "com.tencent.smtt", "com.heyzap.http"}
	libName := fmt.Sprintf("%s.LibHelper%d", libPkgs[i%len(libPkgs)], i)
	lb := dex.NewClass(libName)
	mb := lb.StaticMethod("doWork", dex.Void)
	g.emitSinkCall(mb, spec)
	mb.ReturnVoid().Done()
	g.add(lb)
	g.mainOnCreate.InvokeStatic(dex.NewMethodRef(libName, "doWork", dex.Void))
	g.addTruth(spec, libName, "doWork", true)
}

func (g *generator) flowUnregistered(i int, spec SinkSpec) {
	uName := g.cls(fmt.Sprintf("UnregActivity%d", i))
	ub := dex.NewClass(uName).Extends(android.ActivityClass)
	onCreate := ub.Method("onCreate", dex.Void, dex.T(android.BundleClass))
	g.emitSinkCall(onCreate, spec)
	onCreate.ReturnVoid().Done()
	g.add(ub)
	// Not added to the manifest and never constructed: truly unreachable.
	g.addTruth(spec, uName, "onCreate", false)
}

func (g *generator) flowDead(i int, spec SinkSpec) {
	dName := g.cls(fmt.Sprintf("DeadCode%d", i))
	db := dex.NewClass(dName)
	mb := db.StaticMethod("unused", dex.Void)
	g.emitSinkCall(mb, spec)
	mb.ReturnVoid().Done()
	g.add(db)
	g.addTruth(spec, dName, "unused", false)
}

func (g *generator) flowSubclassSink(i int, spec SinkSpec) {
	// App subclass of the sink's declaring class; the sink API is invoked
	// under the subclass's own signature (the paper's two BackDroid FNs,
	// e.g. com.youzu.android.framework.http.client.DefaultSSLSocketFactory).
	facName := g.cls(fmt.Sprintf("MySSLSocketFactory%d", i))
	fb := dex.NewClass(facName).Extends(android.SSLSocketFactoryClass)
	ctor := fb.Constructor()
	ctor.InvokeDirect(dex.NewMethodRef(android.SSLSocketFactoryClass, "<init>", dex.Void), ctor.This()).
		ReturnVoid().Done()
	g.add(fb)

	hName := g.cls(fmt.Sprintf("SubclassSinkHelper%d", i))
	hb := dex.NewClass(hName)
	mb := hb.StaticMethod("doWork", dex.Void)
	fac, ver := mb.Reg(), mb.Reg()
	subSink := android.SSLSetHostnameVerifier.WithClass(facName)
	mb.New(fac, facName).
		InvokeDirect(dex.NewMethodRef(facName, "<init>", dex.Void), fac)
	if spec.Insecure {
		mb.SGet(ver, android.AllowAllVerifierField)
	} else {
		mb.ConstNull(ver)
	}
	mb.InvokeVirtual(subSink, fac, ver).
		ReturnVoid().Done()
	g.add(hb)

	g.mainOnCreate.InvokeStatic(dex.NewMethodRef(hName, "doWork", dex.Void))
	g.addTruth(spec, hName, "doWork", true)
}

func (g *generator) flowChildClass(i int, spec SinkSpec) {
	baseName := g.cls(fmt.Sprintf("CryptoBase%d", i))
	bb := dex.NewClass(baseName)
	ctor := bb.Constructor()
	ctor.InvokeDirect(objInit, ctor.This()).ReturnVoid().Done()
	doCrypto := bb.Method("doCrypto", dex.Void)
	g.emitSinkCall(doCrypto, spec)
	doCrypto.ReturnVoid().Done()
	g.add(bb)

	childName := g.cls(fmt.Sprintf("CryptoChild%d", i))
	cb := dex.NewClass(childName).Extends(baseName)
	cctor := cb.Constructor()
	cctor.InvokeDirect(dex.NewMethodRef(baseName, "<init>", dex.Void), cctor.This()).
		ReturnVoid().Done()
	g.add(cb)

	oc := g.mainOnCreate
	ch := oc.Reg()
	oc.New(ch, childName).
		InvokeDirect(dex.NewMethodRef(childName, "<init>", dex.Void), ch).
		InvokeVirtual(dex.NewMethodRef(childName, "doCrypto", dex.Void), ch)
	g.addTruth(spec, baseName, "doCrypto", true)
}

func (g *generator) flowSuperPoly(i int, spec SinkSpec) {
	superName := g.cls(fmt.Sprintf("SuperWorker%d", i))
	sb := dex.NewClass(superName)
	sctor := sb.Constructor()
	sctor.InvokeDirect(objInit, sctor.This()).ReturnVoid().Done()
	sb.Method("work", dex.Void).ReturnVoid().Done()
	g.add(sb)

	subName := g.cls(fmt.Sprintf("SubWorker%d", i))
	ub := dex.NewClass(subName).Extends(superName)
	uctor := ub.Constructor()
	uctor.InvokeDirect(dex.NewMethodRef(superName, "<init>", dex.Void), uctor.This()).
		ReturnVoid().Done()
	work := ub.Method("work", dex.Void)
	g.emitSinkCall(work, spec)
	work.ReturnVoid().Done()
	g.add(ub)

	oc := g.mainOnCreate
	w := oc.Reg()
	oc.New(w, subName).
		InvokeDirect(dex.NewMethodRef(subName, "<init>", dex.Void), w).
		InvokeVirtual(dex.NewMethodRef(superName, "work", dex.Void), w)
	g.addTruth(spec, subName, "work", true)
}
