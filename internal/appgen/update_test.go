package appgen

import (
	"bytes"
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/apk"
	"backdroid/internal/dexdump"
)

func updateBaseSpec() Spec {
	return Spec{
		Name:   "com.update.app",
		Seed:   41,
		SizeMB: 1.5,
		Sinks: []SinkSpec{
			{Flow: FlowDirect, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: FlowThread, Rule: android.RuleSSLAllowAll, Insecure: false},
			{Flow: FlowICC, Rule: android.RuleCryptoECB, Insecure: false},
		},
	}
}

func diffApps(t *testing.T, base, upd *apk.App) *dexdump.ManifestDiff {
	t.Helper()
	db, err := base.MergedDex()
	if err != nil {
		t.Fatal(err)
	}
	du, err := upd.MergedDex()
	if err != nil {
		t.Fatal(err)
	}
	old := dexdump.BuildManifest(dexdump.Disassemble(db), nil)
	new := dexdump.BuildManifest(dexdump.Disassemble(du), nil)
	return dexdump.DiffManifests(old, new)
}

// TestUpdateChangeLiteralTouchesOneClass pins the blast radius the delta
// engine relies on: flipping one sink literal changes exactly the class
// holding that sink and flips exactly that sink's truth.
func TestUpdateChangeLiteralTouchesOneClass(t *testing.T) {
	spec := updateBaseSpec()
	base, baseTruth, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	upd, updTruth, err := GenerateUpdate(AppUpdateSpec{
		Base: spec, Mutation: MutateChangeLiteral, TargetSink: 0, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}

	d := diffApps(t, base, upd)
	if len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("change-literal added/removed classes: %+v", d)
	}
	if len(d.Changed) != 1 || d.Changed[0] != baseTruth.Sinks[0].Class {
		t.Fatalf("changed classes = %v, want exactly [%s]", d.Changed, baseTruth.Sinks[0].Class)
	}

	if len(updTruth.Sinks) != len(baseTruth.Sinks) {
		t.Fatalf("truth count changed: %d -> %d", len(baseTruth.Sinks), len(updTruth.Sinks))
	}
	if updTruth.Sinks[0].Insecure == baseTruth.Sinks[0].Insecure {
		t.Error("target sink's Insecure truth did not flip")
	}
	for i := 1; i < len(baseTruth.Sinks); i++ {
		if updTruth.Sinks[i] != baseTruth.Sinks[i] {
			t.Errorf("untargeted sink %d truth changed: %+v -> %+v", i, baseTruth.Sinks[i], updTruth.Sinks[i])
		}
	}
}

// TestUpdateNewFlowAppendsServiceOnly pins that the new-flow update keeps
// every base class byte-identical, adds one registered exported service,
// and appends exactly one reachable truth entry.
func TestUpdateNewFlowAppendsServiceOnly(t *testing.T) {
	spec := updateBaseSpec()
	base, baseTruth, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	upd, updTruth, err := GenerateUpdate(AppUpdateSpec{Base: spec, Mutation: MutateNewFlow, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	d := diffApps(t, base, upd)
	if len(d.Changed) != 0 || len(d.Removed) != 0 {
		t.Fatalf("new-flow changed/removed base classes: %+v", d)
	}
	svc := spec.Name + ".UpdateService"
	if len(d.Added) != 1 || d.Added[0] != svc {
		t.Fatalf("added classes = %v, want exactly [%s]", d.Added, svc)
	}

	if !upd.Manifest.IsRegistered(svc) {
		t.Error("update service not registered in the manifest")
	}
	if c := upd.Manifest.Component(svc); c == nil || !c.Exported {
		t.Errorf("update service not exported: %+v", c)
	}
	if len(updTruth.Sinks) != len(baseTruth.Sinks)+1 {
		t.Fatalf("truth count = %d, want %d", len(updTruth.Sinks), len(baseTruth.Sinks)+1)
	}
	added := updTruth.Sinks[len(updTruth.Sinks)-1]
	if added.Class != svc || added.Method != "onCreate" || !added.Reachable {
		t.Errorf("added truth = %+v, want reachable %s.onCreate", added, svc)
	}
}

// TestUpdateAddClassIsInert pins the SDK-bump update: one added class,
// identical truth.
func TestUpdateAddClassIsInert(t *testing.T) {
	spec := updateBaseSpec()
	base, baseTruth, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	upd, updTruth, err := GenerateUpdate(AppUpdateSpec{Base: spec, Mutation: MutateAddClass, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	d := diffApps(t, base, upd)
	if len(d.Changed) != 0 || len(d.Removed) != 0 {
		t.Fatalf("add-class changed/removed base classes: %+v", d)
	}
	patch := spec.Name + ".UpdatePatch"
	if len(d.Added) != 1 || d.Added[0] != patch {
		t.Fatalf("added classes = %v, want exactly [%s]", d.Added, patch)
	}
	if len(updTruth.Sinks) != len(baseTruth.Sinks) {
		t.Fatalf("inert update changed truth count: %d -> %d", len(baseTruth.Sinks), len(updTruth.Sinks))
	}
	for i := range baseTruth.Sinks {
		if updTruth.Sinks[i] != baseTruth.Sinks[i] {
			t.Errorf("sink %d truth changed: %+v -> %+v", i, baseTruth.Sinks[i], updTruth.Sinks[i])
		}
	}
}

// TestGenerateUpdateDeterministic pins that updates are reproducible:
// same spec, same bytes.
func TestGenerateUpdateDeterministic(t *testing.T) {
	for _, m := range Mutations() {
		u := AppUpdateSpec{Base: updateBaseSpec(), Mutation: m, Seed: 11}
		a1, _, err := GenerateUpdate(u)
		if err != nil {
			t.Fatal(err)
		}
		a2, _, err := GenerateUpdate(u)
		if err != nil {
			t.Fatal(err)
		}
		b1, err := a1.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		b2, err := a2.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%v update not deterministic", m)
		}
	}
}
