package appgen

import (
	"math"
	"math/rand"
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/dex"
)

func allFlowsSpec() Spec {
	var sinks []SinkSpec
	for f := FlowDirect; f <= FlowSuperPoly; f++ {
		rule := android.RuleCryptoECB
		if f == FlowSubclassSink {
			rule = android.RuleSSLAllowAll
		}
		sinks = append(sinks, SinkSpec{Flow: f, Rule: rule, Insecure: true})
	}
	return Spec{Name: "com.gen.test", Seed: 42, SizeMB: 3, Sinks: sinks}
}

func TestGenerateAllFlows(t *testing.T) {
	app, truth, err := Generate(allFlowsSpec())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if truth.App != "com.gen.test" {
		t.Errorf("truth app = %q", truth.App)
	}
	if len(truth.Sinks) != 12 {
		t.Fatalf("truth sinks = %d, want 12", len(truth.Sinks))
	}
	merged, err := app.MergedDex()
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range truth.Sinks {
		if merged.Class(st.Class) == nil {
			t.Errorf("sink class %s missing from dex", st.Class)
		}
	}
	// Reachability ground truth: dead + unregistered are unreachable.
	for _, st := range truth.Sinks {
		wantReach := st.Spec.Flow != FlowDead && st.Spec.Flow != FlowUnregistered
		if st.Reachable != wantReach {
			t.Errorf("flow %v reachable = %v, want %v", st.Spec.Flow, st.Reachable, wantReach)
		}
		if st.Insecure != (st.Spec.Insecure && wantReach) {
			t.Errorf("flow %v insecure truth inconsistent", st.Spec.Flow)
		}
	}
}

func TestGenerateSizeBudget(t *testing.T) {
	for _, mb := range []float64{1, 5, 20} {
		app, _, err := Generate(Spec{Name: "com.size.test", Seed: 7, SizeMB: mb,
			Sinks: []SinkSpec{{Flow: FlowDirect, Rule: android.RuleCryptoECB}}})
		if err != nil {
			t.Fatal(err)
		}
		want := int(mb * InstructionsPerMB)
		got := app.InstructionCount()
		if math.Abs(float64(got-want)) > float64(want)/5 {
			t.Errorf("size %.0fMB: instructions = %d, want ~%d", mb, got, want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := allFlowsSpec()
	a1, t1, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	a2, t2, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := a1.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a2.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != len(b2) {
		t.Error("generation must be deterministic")
	}
	if len(t1.Sinks) != len(t2.Sinks) {
		t.Error("ground truth must be deterministic")
	}
}

func TestGenerateMultiDex(t *testing.T) {
	spec := allFlowsSpec()
	spec.MultiDex = true
	spec.SizeMB = 4
	app, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Dexes) != 2 {
		t.Fatalf("dexes = %d, want 2", len(app.Dexes))
	}
	if _, err := app.MergedDex(); err != nil {
		t.Errorf("multidex merge failed: %v", err)
	}
}

func TestGenerateCorruptMethods(t *testing.T) {
	spec := Spec{Name: "com.corrupt.test", Seed: 3, SizeMB: 1, CorruptMethods: 2,
		Sinks: []SinkSpec{{Flow: FlowDirect, Rule: android.RuleCryptoECB, Insecure: true}}}
	app, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := app.MergedDex()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Class("com.corrupt.test.Corrupt0") == nil || merged.Class("com.corrupt.test.Corrupt1") == nil {
		t.Error("corrupt classes missing")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, _, err := Generate(Spec{}); err == nil {
		t.Error("nameless spec must fail")
	}
	if _, _, err := Generate(Spec{Name: "x", Sinks: []SinkSpec{{Flow: Flow(99)}}}); err == nil {
		t.Error("unknown flow must fail")
	}
}

func TestSampleSizesMBMatchesMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := SampleSizesMB(rng, 42.6, 38.0, 20000)
	stats := Summarize(sizes)
	if math.Abs(stats.AvgMB-42.6) > 3 {
		t.Errorf("avg = %.1f, want ~42.6", stats.AvgMB)
	}
	if math.Abs(stats.MedMB-38.0) > 3 {
		t.Errorf("median = %.1f, want ~38.0", stats.MedMB)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.AvgMB != 0 || s.MedMB != 0 {
		t.Error("empty summarize should be zero")
	}
	s := Summarize([]float64{1, 3})
	if s.MedMB != 2 || s.AvgMB != 2 {
		t.Errorf("two-element summarize = %+v", s)
	}
}

func TestPaperYearStats(t *testing.T) {
	ys := PaperYearStats()
	if len(ys) != 5 || ys[0].Year != 2014 || ys[4].Year != 2018 {
		t.Fatalf("year stats = %+v", ys)
	}
	if ys[4].AvgMB != 42.6 || ys[4].MedMB != 38.0 || ys[4].Samples != 3178 {
		t.Errorf("2018 row = %+v", ys[4])
	}
}

func TestEvalCorpusShape(t *testing.T) {
	specs := EvalCorpus(DefaultCorpus())
	if len(specs) != 144 {
		t.Fatalf("corpus = %d apps, want 144", len(specs))
	}
	var sizes []float64
	totalSinks := 0
	subclassApps := 0
	corruptApps := 0
	outlier := false
	for _, s := range specs {
		sizes = append(sizes, s.SizeMB)
		totalSinks += len(s.Sinks)
		if s.CorruptMethods > 0 {
			corruptApps++
		}
		for _, sk := range s.Sinks {
			if sk.Flow == FlowSubclassSink {
				subclassApps++
				break
			}
		}
		if len(s.Sinks) == 121 {
			outlier = true
		}
	}
	stats := Summarize(sizes)
	if stats.AvgMB < 30 || stats.AvgMB > 55 {
		t.Errorf("corpus avg size = %.1f, want ~41.5", stats.AvgMB)
	}
	avgSinks := float64(totalSinks) / float64(len(specs))
	if avgSinks < 12 || avgSinks > 32 {
		t.Errorf("avg sinks/app = %.1f, want ~21", avgSinks)
	}
	if subclassApps != 2 {
		t.Errorf("subclass-sink apps = %d, want exactly 2 (the paper's FNs)", subclassApps)
	}
	if corruptApps == 0 {
		t.Error("corpus should include apps with corrupted methods")
	}
	if !outlier {
		t.Error("corpus should include the 121-sink outlier")
	}
}

func TestEvalCorpusDeterministic(t *testing.T) {
	s1 := EvalCorpus(DefaultCorpus())
	s2 := EvalCorpus(DefaultCorpus())
	for i := range s1 {
		if s1[i].Name != s2[i].Name || s1[i].SizeMB != s2[i].SizeMB || len(s1[i].Sinks) != len(s2[i].Sinks) {
			t.Fatalf("corpus not deterministic at %d", i)
		}
	}
}

func TestFlowString(t *testing.T) {
	if FlowDirect.String() != "direct" || FlowSubclassSink.String() != "subclass-sink" {
		t.Error("flow names wrong")
	}
	if Flow(99).String() == "" {
		t.Error("unknown flow should render")
	}
}

func TestSplitDexPreservesClasses(t *testing.T) {
	f := dex.NewFile()
	for _, n := range []string{"com.a.A", "com.a.B", "com.a.C"} {
		if err := f.AddClass(dex.NewClass(n).Build()); err != nil {
			t.Fatal(err)
		}
	}
	parts := splitDex(f)
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p.Classes())
	}
	if total != 3 {
		t.Errorf("classes after split = %d, want 3", total)
	}
}
