package appgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"backdroid/internal/android"
)

// YearStats is one row of the paper's Table I.
type YearStats struct {
	Year    int
	AvgMB   float64
	MedMB   float64
	Samples int
}

// PaperYearStats reproduces Table I's population parameters: the average
// and median popular-app sizes per year and the sample counts.
func PaperYearStats() []YearStats {
	return []YearStats{
		{Year: 2014, AvgMB: 13.8, MedMB: 8.4, Samples: 2840},
		{Year: 2015, AvgMB: 18.8, MedMB: 12.4, Samples: 1375},
		{Year: 2016, AvgMB: 21.6, MedMB: 16.2, Samples: 3510},
		{Year: 2017, AvgMB: 32.9, MedMB: 30.0, Samples: 1706},
		{Year: 2018, AvgMB: 42.6, MedMB: 38.0, Samples: 3178},
	}
}

// SampleSizesMB draws n app sizes from a lognormal distribution fitted to
// the given average and median: for lognormal, median = e^mu and
// mean = e^(mu+sigma^2/2), so sigma^2 = 2 ln(mean/median).
func SampleSizesMB(rng *rand.Rand, avg, median float64, n int) []float64 {
	mu := math.Log(median)
	sigma := math.Sqrt(2 * math.Log(avg/median))
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(mu + sigma*rng.NormFloat64())
	}
	return out
}

// SizeStats summarizes a size sample.
type SizeStats struct {
	AvgMB float64
	MedMB float64
}

// Summarize computes average and median of a size sample.
func Summarize(sizes []float64) SizeStats {
	if len(sizes) == 0 {
		return SizeStats{}
	}
	sorted := make([]float64, len(sizes))
	copy(sorted, sizes)
	sort.Float64s(sorted)
	sum := 0.0
	for _, s := range sorted {
		sum += s
	}
	med := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		med = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	return SizeStats{AvgMB: sum / float64(len(sorted)), MedMB: med}
}

// CorpusOptions configures the evaluation corpus builder.
type CorpusOptions struct {
	// Apps is the number of apps (the paper's evaluation set has 144).
	Apps int
	// Seed drives all sampling.
	Seed int64
	// SizeScale scales every app's size; 1.0 is paper scale. Benches use
	// smaller scales; only absolute simulated times change, not the
	// qualitative shapes.
	SizeScale float64
}

// DefaultCorpus mirrors the paper's 144-app evaluation set.
func DefaultCorpus() CorpusOptions {
	return CorpusOptions{Apps: 144, Seed: 20200523, SizeScale: 1.0}
}

// ManySinkOutlierSpec is the Fig. 9 many-sink outlier analogue (the
// paper's 121-sink Huawei Health case, Sec. VI-D), purpose-built for
// measuring the per-app SSG: one large app whose 121 sinks all funnel
// their parameter through the app-shared configuration chain, so per-sink
// slicing graphs rebuild the same subgraph 121 times while a per-app graph
// builds it once.
func ManySinkOutlierSpec(seed int64) Spec {
	sinks := make([]SinkSpec, 0, 121)
	for s := 0; s < 121; s++ {
		sinks = append(sinks, SinkSpec{
			Flow:     FlowSharedConfig,
			Rule:     android.RuleCryptoECB,
			Insecure: s%3 != 0,
		})
	}
	return Spec{
		Name:   "com.outlier.manysink",
		Seed:   seed,
		SizeMB: 8,
		Sinks:  sinks,
	}
}

// flowMix is the sampling weight of each flow kind in the corpus,
// approximating the composition the paper's diagnosis implies
// (Secs. VI-C/VI-D).
var flowMix = []struct {
	flow   Flow
	weight float64
}{
	{FlowDirect, 0.36},
	{FlowDirectPair, 0.08},
	{FlowRecursive, 0.06},
	{FlowThread, 0.09},
	{FlowClinit, 0.07},
	{FlowICC, 0.06},
	{FlowCallback, 0.06},
	{FlowAsyncExecutor, 0.06},
	{FlowChildClass, 0.05},
	{FlowSuperPoly, 0.05},
	{FlowDead, 0.03},
	{FlowUnregistered, 0.02},
	{FlowSkippedLib, 0.01},
}

func sampleFlow(rng *rand.Rand) Flow {
	x := rng.Float64()
	acc := 0.0
	for _, fm := range flowMix {
		acc += fm.weight
		if x < acc {
			return fm.flow
		}
	}
	return FlowDirect
}

// EvalCorpus generates the specs of the evaluation corpus: sizes fitted to
// the paper's 144 pre-searched apps (avg 41.5 MB, median 36.2 MB, range
// 2.9–104.9 MB), on average ~21 sink calls per app with one
// 121-sink outlier (the paper's Huawei Health analogue), exactly two apps
// containing subclassed sink wrappers (the paper's two BackDroid FNs), and
// a few apps with corrupted methods (Amandroid's occasional errors).
func EvalCorpus(opts CorpusOptions) []Spec {
	if opts.Apps <= 0 {
		opts.Apps = 144
	}
	if opts.SizeScale <= 0 {
		opts.SizeScale = 1.0
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	sizes := SampleSizesMB(rng, 41.5, 36.2, opts.Apps)
	for i := range sizes {
		// The paper's evaluation set has a fatter low tail than a pure
		// lognormal (its smallest app is 2.9 MB): mix in small apps.
		if rng.Float64() < 0.18 {
			sizes[i] = 2.9 + rng.Float64()*12
		}
		if sizes[i] < 2.9 {
			sizes[i] = 2.9
		}
		if sizes[i] > 104.9 {
			sizes[i] = 104.9
		}
	}

	specs := make([]Spec, opts.Apps)
	for i := range specs {
		sinkCount := 1 + int(rng.ExpFloat64()*19)
		if sinkCount > 70 {
			sinkCount = 70
		}
		var sinks []SinkSpec
		for s := 0; s < sinkCount; s++ {
			flow := sampleFlow(rng)
			rule := android.RuleCryptoECB
			if flow == FlowSubclassSink || rng.Float64() < 0.3 {
				rule = android.RuleSSLAllowAll
			}
			sinks = append(sinks, SinkSpec{
				Flow:     flow,
				Rule:     rule,
				Insecure: rng.Float64() < 0.25,
			})
		}
		// Framework heaviness is bimodal: most apps have shallow dispatch
		// structures, while a large minority bundle heavyweight SDKs whose
		// listener hierarchies make whole-app analysis explode. This is
		// the per-app variance behind Amandroid's 35% timeout rate.
		fanOut := 4 + rng.Intn(36)
		if rng.Float64() < 0.50 {
			fanOut = 120 + rng.Intn(280)
		}
		spec := Spec{
			Name:          fmt.Sprintf("com.corpus.app%03d", i),
			Seed:          opts.Seed + int64(i)*7919,
			SizeMB:        sizes[i] * opts.SizeScale,
			Sinks:         sinks,
			MultiDex:      sizes[i]*opts.SizeScale > 50,
			FanOut:        fanOut,
			DataDiversity: rng.Float64() * 0.3,
		}
		// Occasional whole-app analysis errors: ~5% of apps carry a
		// corrupted reachable method.
		if i%21 == 13 {
			spec.CorruptMethods = 1
		}
		specs[i] = spec
	}

	// The two subclassed-sink apps (paper's two false negatives).
	for _, i := range []int{17, 83} {
		if i < len(specs) {
			specs[i].Sinks = append(specs[i].Sinks, SinkSpec{
				Flow: FlowSubclassSink, Rule: android.RuleSSLAllowAll, Insecure: true,
			})
			specs[i].CorruptMethods = 0
		}
	}
	// The 121-sink outlier (paper Sec. VI-D).
	if len(specs) > 100 {
		out := &specs[100]
		out.SizeMB = 104.9 * opts.SizeScale
		var sinks []SinkSpec
		for s := 0; s < 121; s++ {
			sinks = append(sinks, SinkSpec{
				Flow:     FlowDirect,
				Rule:     android.RuleCryptoECB,
				Insecure: s%5 == 0,
			})
		}
		out.Sinks = sinks
		out.CorruptMethods = 0
	}
	return specs
}
