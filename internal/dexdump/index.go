package dexdump

import "strings"

// Index is the inverted index over the dump text. One tokenization pass
// extracts the operand tokens that the Sec. IV search commands key on —
// invoke target signatures, class descriptors of new-instance/const-class
// operands, const-string values, field signatures and every embedded
// "L...;" class descriptor — and records, per token, the ascending list of
// dump lines it occurs on. A search command then touches only its postings
// instead of every dump line; candidates are still re-verified against the
// exact grep predicate, so the index over-approximates and never changes
// hit semantics. See DESIGN.md Sec. 3.
//
// Postings are line numbers in ascending order. An Index is immutable
// after construction and safe for concurrent readers.
type Index struct {
	invokeBySig   map[string][]int32 // full target sig -> invoke-* lines
	invokeByName  map[string][]int32 // ".name:descriptor" -> invoke-* lines
	invokeByNameP map[string][]int32 // ".name:" prefix -> invoke-* lines
	ctorByPrefix  map[string][]int32 // "Lcls;.<init>:" -> invoke-direct lines
	newInstance   map[string][]int32 // class descriptor -> new-instance lines
	constClass    map[string][]int32 // class descriptor -> const-class lines
	constString   map[string][]int32 // rendered literal -> const-string lines
	fieldBySig    map[string][]int32 // field sig -> iget/iput/sget/sput lines
	classUse      map[string][]int32 // class descriptor -> every line using it

	// Side lists for lines whose string literal could satisfy a
	// Contains-style predicate in ways token extraction cannot
	// anticipate; the matching lookups always visit them too.
	oddStrings []int32 // const-string lines with escaped values
	oddFields  []int32 // quoted lines containing a field mnemonic
	oddCtors   []int32 // quoted lines containing "invoke-direct"
	oddInvokes []int32 // quoted lines containing "invoke-"

	lines    int
	postings int
}

// Source is the postings interface the indexed search backend resolves
// commands against. Both the single merged Index and the ShardedIndex
// implement it; every lookup returns an ascending, duplicate-free list of
// candidate dump lines that the caller re-verifies against the exact
// command predicate.
type Source interface {
	InvokeBySig(sig string) []int32
	InvokeByName(needle string) []int32
	InvokeByNamePrefix(prefix string) []int32
	CtorByPrefix(prefix string) []int32
	NewInstance(desc string) []int32
	ConstClass(desc string) []int32
	ConstString(value string) []int32
	FieldBySig(sig string) []int32
	ClassUse(desc string) []int32
	Lines() int
	Postings() int
	ShardCount() int
	// TokenListLengths returns the total postings-list length of every
	// distinct (token family, token) pair of the source — for a sharded
	// source the per-shard lists of one token are summed, since a lookup
	// visits them all. The order is unspecified; callers sort. The search
	// layer derives per-app parallel-lookup gates from this distribution.
	TokenListLengths() []int
}

func newIndex(lines int) *Index {
	return &Index{
		invokeBySig:   make(map[string][]int32),
		invokeByName:  make(map[string][]int32),
		invokeByNameP: make(map[string][]int32),
		ctorByPrefix:  make(map[string][]int32),
		newInstance:   make(map[string][]int32),
		constClass:    make(map[string][]int32),
		constString:   make(map[string][]int32),
		fieldBySig:    make(map[string][]int32),
		classUse:      make(map[string][]int32),
		lines:         lines,
	}
}

// BuildIndex tokenizes every dump line once and returns the inverted
// index. Cost is linear in the dump text; the caller is responsible for
// charging the work meter.
func BuildIndex(t *Text) *Index {
	idx := newIndex(len(t.lines))
	for i, line := range t.lines {
		idx.addLine(int32(i), line)
	}
	return idx
}

func (x *Index) addLine(n int32, line string) {
	// Class-descriptor occurrences anywhere on the line: every "L...;"
	// token, wherever it starts. A descriptor contains no ';', so if one
	// occurs at position i the first ';' at or after i closes it exactly;
	// spurious tokens (an 'L' that is not a descriptor start) only bloat
	// unqueried postings lists and are filtered by Match on lookup.
	for i := 0; i < len(line); i++ {
		if line[i] != 'L' {
			continue
		}
		j := strings.IndexByte(line[i:], ';')
		if j < 0 {
			break // no ';' remains, no further descriptor can close
		}
		x.add(x.classUse, line[i:i+j+1], n)
	}

	// Operand tokens live after the last ", " of an instruction line
	// (registers precede them); signatures and descriptors contain no
	// ", ", so the tail is the whole operand.
	tail := ""
	if k := strings.LastIndex(line, ", "); k >= 0 {
		tail = line[k+2:]
	}
	// Double quotes appear only in const-string literals; a quoted line is
	// a literal whose content can accidentally satisfy Contains-style
	// predicates (see the side lists below).
	quoted := strings.IndexByte(line, '"') >= 0

	// The family checks below are deliberately independent, not exclusive:
	// the linear grep predicates are substring tests, so a single line can
	// satisfy several families at once (e.g. a string literal whose value
	// contains a mnemonic). Indexing a line under a family it only
	// accidentally belongs to costs a posting; missing one would cost a
	// hit.
	if strings.Contains(line, "invoke-") && tail != "" {
		x.add(x.invokeBySig, tail, n)
		// ".name:descriptor" begins at the dot after the class descriptor;
		// the ".name:" prefix (descriptor-independent, the two-time ICC
		// search's first pass) ends at the colon after the name.
		if p := strings.Index(tail, ";."); p >= 0 {
			needle := tail[p+1:]
			x.add(x.invokeByName, needle, n)
			if c := strings.IndexByte(needle, ':'); c >= 0 {
				x.add(x.invokeByNameP, needle[:c+1], n)
			}
		}
		// Constructor prefix "Lcls;.<init>:" — everything up to and
		// including the colon that separates name from descriptor.
		if strings.Contains(line, "invoke-direct") {
			if c := strings.IndexByte(tail, ':'); c >= 0 {
				x.add(x.ctorByPrefix, tail[:c+1], n)
			}
		}
		// A quoted line "containing" invoke- is a string literal that could
		// embed any ".name:" needle anywhere, which the linear Contains grep
		// would match; every prefix lookup must consider it.
		if quoted {
			x.addSide(&x.oddInvokes, n)
		}
	}
	if strings.Contains(line, "new-instance") && tail != "" {
		x.add(x.newInstance, tail, n)
	}
	if strings.Contains(line, "const-class") && tail != "" {
		x.add(x.constClass, tail, n)
	}
	if strings.Contains(line, "const-string") {
		i := strings.IndexByte(line, '"')
		j := strings.LastIndexByte(line, '"')
		if i >= 0 && j > i {
			val := line[i+1 : j]
			x.add(x.constString, val, n)
			// Literals rendered with escapes can satisfy quoted-substring
			// queries that differ from the whole extracted value; keep
			// them on a side list every const-string lookup also visits.
			if strings.ContainsAny(val, `\"`) {
				x.addSide(&x.oddStrings, n)
			}
		}
	}
	if strings.Contains(line, "iget") || strings.Contains(line, "iput") ||
		strings.Contains(line, "sget") || strings.Contains(line, "sput") {
		if tail != "" {
			x.add(x.fieldBySig, tail, n)
		}
		// Only string literals carry double quotes in the dump; a quoted
		// line "containing" a field mnemonic is a literal that could also
		// embed any field signature, so every field lookup must consider
		// it (the linear grep would match it too).
		if quoted {
			x.addSide(&x.oddFields, n)
		}
	}
	// Same literal vector for the constructor search's Contains predicate.
	if quoted && strings.Contains(line, "invoke-direct") {
		x.addSide(&x.oddCtors, n)
	}
}

// addSide appends line n to a side list, deduplicating repeats.
func (x *Index) addSide(list *[]int32, n int32) {
	if p := *list; len(p) > 0 && p[len(p)-1] == n {
		return
	}
	*list = append(*list, n)
	x.postings++
}

// add appends line n to the postings list of token, deduplicating
// consecutive inserts (the same token can occur twice on one line).
func (x *Index) add(m map[string][]int32, token string, n int32) {
	p := m[token]
	if len(p) > 0 && p[len(p)-1] == n {
		return
	}
	m[token] = append(p, n)
	x.postings++
}

// InvokeBySig returns the invoke lines whose target is exactly sig.
func (x *Index) InvokeBySig(sig string) []int32 { return x.invokeBySig[sig] }

// InvokeByName returns the invoke lines whose target ends in
// ".name:descriptor" regardless of declaring class.
func (x *Index) InvokeByName(needle string) []int32 { return x.invokeByName[needle] }

// InvokeByNamePrefix returns the candidate invoke lines whose target
// method name matches the ".name:" prefix regardless of declaring class
// and descriptor, plus any string literal mentioning an invoke mnemonic
// (the linear Contains grep would match those too; the caller's predicate
// filters them). This backs the two-time ICC search's first pass, which
// previously fell back to a raw O(lines) scan.
func (x *Index) InvokeByNamePrefix(prefix string) []int32 {
	return mergePostings(x.invokeByNameP[prefix], x.oddInvokes)
}

// CtorByPrefix returns the candidate invoke-direct lines calling any
// constructor with the given "Lcls;.<init>:" prefix, plus any string
// literal mentioning invoke-direct (the linear Contains grep would match
// those too; the caller's predicate filters them).
func (x *Index) CtorByPrefix(prefix string) []int32 {
	return mergePostings(x.ctorByPrefix[prefix], x.oddCtors)
}

// NewInstance returns the new-instance lines allocating the descriptor.
func (x *Index) NewInstance(desc string) []int32 { return x.newInstance[desc] }

// ConstClass returns the const-class lines loading the descriptor.
func (x *Index) ConstClass(desc string) []int32 { return x.constClass[desc] }

// ConstString returns the candidate const-string lines for the value: the
// lines whose whole rendered literal equals it, plus every line whose
// literal contains escapes (those can satisfy quoted-substring queries the
// value map cannot anticipate).
func (x *Index) ConstString(value string) []int32 {
	return mergePostings(x.constString[value], x.oddStrings)
}

// FieldBySig returns the candidate field access lines (reads and writes)
// of the field signature, plus any string literal containing a field
// mnemonic (those could embed the signature anywhere; the caller's
// predicate filters them).
func (x *Index) FieldBySig(sig string) []int32 {
	return mergePostings(x.fieldBySig[sig], x.oddFields)
}

// mergePostings merges two ascending duplicate-free postings lists into
// one ascending duplicate-free list.
func mergePostings(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default: // equal line in both lists
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	return out
}

// ClassUse returns every line on which the class descriptor occurs.
func (x *Index) ClassUse(desc string) []int32 { return x.classUse[desc] }

// Lines returns the number of dump lines the index covers.
func (x *Index) Lines() int { return x.lines }

// Postings returns the total number of postings across all token maps — a
// size/overhead measure for reports and tests.
func (x *Index) Postings() int { return x.postings }

// ShardCount returns 1: a single merged Index is one shard.
func (x *Index) ShardCount() int { return 1 }

// TokenListLengths returns the postings-list length of every token across
// all token maps (families are distinct lookups, so their tokens count
// separately even when the key strings collide).
func (x *Index) TokenListLengths() []int {
	var out []int
	for _, m := range x.maps() {
		for _, p := range *m {
			out = append(out, len(p))
		}
	}
	return out
}
