package dexdump

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
)

// Persistent index cache codec. A serialized index lives next to the APK
// (or in a configured cache directory) so repeated analyses of the same
// app skip tokenization entirely. The file layout is:
//
//	offset  size  field
//	0       4     magic "BDIX"
//	4       2     codec version (little endian)
//	6       2     shard count
//	8       8     FNV-64a content hash of the full dump text
//	16      4     dump line count
//	20      4     IEEE CRC-32 of the payload
//	24      ...   payload: per shard, every postings map and side list
//
// Postings maps are encoded with sorted keys and delta-varint line lists,
// so files are deterministic for a given index. Every validation failure —
// wrong magic, unknown version, stale content hash, line-count mismatch,
// CRC mismatch, truncation — is an error the caller treats as a cache
// miss: rebuild from the dump and overwrite the file, never fail the
// analysis.

// CodecVersion is the on-disk format version. Bump it whenever the
// payload layout or the token families change; old files then decode as
// stale and are rebuilt silently.
const CodecVersion = 1

const (
	codecMagic      = "BDIX"
	codecHeaderSize = 24
)

// CacheFileExt is the filename extension of persistent index cache files.
const CacheFileExt = ".bdx"

// DumpHash returns the FNV-64a content hash of the dump text — the
// staleness check of the persistent cache.
func DumpHash(t *Text) uint64 {
	h := fnv.New64a()
	h.Write([]byte(t.full))
	return h.Sum64()
}

// shardsOf flattens a Source into its shard list.
func shardsOf(src Source) ([]*Index, error) {
	switch s := src.(type) {
	case *Index:
		return []*Index{s}, nil
	case *ShardedIndex:
		return s.shards, nil
	}
	return nil, fmt.Errorf("dexdump: cannot encode index source %T", src)
}

// EncodeIndexFile serializes the index (single or sharded) of the dump
// into the cache file format.
func EncodeIndexFile(t *Text, src Source) ([]byte, error) {
	shards, err := shardsOf(src)
	if err != nil {
		return nil, err
	}
	if len(shards) > 0xffff {
		return nil, fmt.Errorf("dexdump: %d shards exceed the codec limit", len(shards))
	}
	var payload []byte
	for _, sh := range shards {
		payload = appendShard(payload, sh)
	}
	buf := make([]byte, codecHeaderSize, codecHeaderSize+len(payload))
	copy(buf[0:4], codecMagic)
	binary.LittleEndian.PutUint16(buf[4:6], CodecVersion)
	binary.LittleEndian.PutUint16(buf[6:8], uint16(len(shards)))
	binary.LittleEndian.PutUint64(buf[8:16], DumpHash(t))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(t.LineCount()))
	binary.LittleEndian.PutUint32(buf[20:24], crc32.ChecksumIEEE(payload))
	return append(buf, payload...), nil
}

// DecodeIndexFile parses a cache file and validates it against the dump
// text. A one-shard file decodes to a plain *Index, a multi-shard file to
// a *ShardedIndex. Any validation failure returns an error; the caller
// rebuilds from the dump.
func DecodeIndexFile(data []byte, t *Text) (Source, error) {
	if len(data) < codecHeaderSize {
		return nil, fmt.Errorf("dexdump: index cache truncated: %d bytes", len(data))
	}
	if string(data[0:4]) != codecMagic {
		return nil, fmt.Errorf("dexdump: index cache bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != CodecVersion {
		return nil, fmt.Errorf("dexdump: index cache version %d, want %d", v, CodecVersion)
	}
	shardCount := int(binary.LittleEndian.Uint16(data[6:8]))
	if shardCount == 0 {
		return nil, fmt.Errorf("dexdump: index cache has no shards")
	}
	if h := binary.LittleEndian.Uint64(data[8:16]); h != DumpHash(t) {
		return nil, fmt.Errorf("dexdump: index cache stale: content hash mismatch")
	}
	if n := int(binary.LittleEndian.Uint32(data[16:20])); n != t.LineCount() {
		return nil, fmt.Errorf("dexdump: index cache stale: %d lines, dump has %d", n, t.LineCount())
	}
	payload := data[codecHeaderSize:]
	if crc := binary.LittleEndian.Uint32(data[20:24]); crc != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("dexdump: index cache payload CRC mismatch")
	}
	shards := make([]*Index, shardCount)
	rest := payload
	var err error
	for i := range shards {
		shards[i], rest, err = decodeShard(rest, t.LineCount())
		if err != nil {
			return nil, fmt.Errorf("dexdump: index cache shard %d: %w", i, err)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("dexdump: index cache has %d trailing bytes", len(rest))
	}
	if shardCount == 1 {
		idx := shards[0]
		idx.lines = t.LineCount()
		return idx, nil
	}
	return &ShardedIndex{shards: shards, lines: t.LineCount()}, nil
}

// CachePath returns the cache file path for an app inside dir.
func CachePath(dir, appName string) string {
	return filepath.Join(dir, appName+CacheFileExt)
}

// WriteIndexCache atomically persists the index next to path (temp file +
// rename), creating the directory if needed.
func WriteIndexCache(path string, t *Text, src Source) error {
	data, err := EncodeIndexFile(t, src)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bdx-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadIndexCache reads and validates a cache file against the dump text.
func LoadIndexCache(path string, t *Text) (Source, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeIndexFile(data, t)
}

// appendShard encodes one shard: the lines/postings counters, all nine
// postings maps (sorted keys, delta-varint lists) and the four side lists.
func appendShard(buf []byte, x *Index) []byte {
	buf = binary.AppendUvarint(buf, uint64(x.lines))
	buf = binary.AppendUvarint(buf, uint64(x.postings))
	for _, m := range x.maps() {
		buf = appendMap(buf, *m)
	}
	for _, l := range x.sideLists() {
		buf = appendPostings(buf, *l)
	}
	return buf
}

// maps returns the postings maps in fixed codec order.
func (x *Index) maps() []*map[string][]int32 {
	return []*map[string][]int32{
		&x.invokeBySig, &x.invokeByName, &x.invokeByNameP, &x.ctorByPrefix,
		&x.newInstance, &x.constClass, &x.constString, &x.fieldBySig, &x.classUse,
	}
}

// sideLists returns the side lists in fixed codec order.
func (x *Index) sideLists() []*[]int32 {
	return []*[]int32{&x.oddStrings, &x.oddFields, &x.oddCtors, &x.oddInvokes}
}

func appendMap(buf []byte, m map[string][]int32) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = appendPostings(buf, m[k])
	}
	return buf
}

// appendPostings delta-encodes an ascending postings list.
func appendPostings(buf []byte, p []int32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p)))
	prev := int32(0)
	for _, n := range p {
		buf = binary.AppendUvarint(buf, uint64(n-prev))
		prev = n
	}
	return buf
}

func decodeShard(buf []byte, maxLines int) (*Index, []byte, error) {
	x := newIndex(0)
	lines, buf, err := readUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	postings, buf, err := readUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if lines > uint64(maxLines) {
		return nil, nil, fmt.Errorf("shard claims %d lines, dump has %d", lines, maxLines)
	}
	x.lines = int(lines)
	x.postings = int(postings)
	for _, m := range x.maps() {
		*m, buf, err = decodeMap(buf, maxLines)
		if err != nil {
			return nil, nil, err
		}
	}
	for _, l := range x.sideLists() {
		*l, buf, err = decodePostings(buf, maxLines)
		if err != nil {
			return nil, nil, err
		}
	}
	return x, buf, nil
}

func decodeMap(buf []byte, maxLines int) (map[string][]int32, []byte, error) {
	count, buf, err := readUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	m := make(map[string][]int32, count)
	for i := uint64(0); i < count; i++ {
		var klen uint64
		klen, buf, err = readUvarint(buf)
		if err != nil {
			return nil, nil, err
		}
		if uint64(len(buf)) < klen {
			return nil, nil, fmt.Errorf("truncated map key")
		}
		key := string(buf[:klen])
		buf = buf[klen:]
		var p []int32
		p, buf, err = decodePostings(buf, maxLines)
		if err != nil {
			return nil, nil, err
		}
		m[key] = p
	}
	return m, buf, nil
}

// decodePostings rebuilds a delta-encoded postings list, rejecting any
// line outside [0, maxLines) and any non-ascending sequence: a lookup
// hands these lines straight to the dump text, so a CRC-colliding or
// hand-crafted file must decode as a miss, never panic later.
func decodePostings(buf []byte, maxLines int) ([]int32, []byte, error) {
	count, buf, err := readUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if count == 0 {
		return nil, buf, nil
	}
	if count > uint64(maxLines) {
		return nil, nil, fmt.Errorf("%d postings for a %d-line dump", count, maxLines)
	}
	p := make([]int32, 0, count)
	prev := int64(-1)
	for i := uint64(0); i < count; i++ {
		var d uint64
		d, buf, err = readUvarint(buf)
		if err != nil {
			return nil, nil, err
		}
		if d > uint64(maxLines) {
			return nil, nil, fmt.Errorf("posting delta %d out of range", d)
		}
		if i == 0 {
			prev = int64(d)
		} else {
			if d == 0 {
				return nil, nil, fmt.Errorf("postings not strictly ascending")
			}
			prev += int64(d)
		}
		if prev >= int64(maxLines) {
			return nil, nil, fmt.Errorf("posting line %d out of range (dump has %d lines)", prev, maxLines)
		}
		p = append(p, int32(prev))
	}
	return p, buf, nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated varint")
	}
	return v, buf[n:], nil
}
