package dexdump

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"backdroid/internal/dex"
)

// Persistent cache codec. A serialized bundle lives next to the APK (or in
// a configured cache directory) so repeated analyses of the same app skip
// tokenization — and, since codec version 2, disassembly itself. The file
// is a versioned multi-section bundle:
//
//	offset  size  field
//	0       4     magic "BDIX"
//	4       2     codec version (little endian)
//	6       2     shard count
//	8       8     FNV-64a content hash of the full dump text
//	16      4     dump line count
//	20      4     IEEE CRC-32 of the index payload
//	24      4     index payload length (version >= 2 only)
//	28      ...   index payload: per shard, every postings map and side list
//	...     8     app fingerprint (FNV-64a over the encoded dex files)
//	...     4     IEEE CRC-32 of the dump payload
//	...     4     dump payload length
//	...     ...   dump payload: the serialized dexdump.Text
//	...     4     IEEE CRC-32 of the manifest payload (version >= 3 only)
//	...     4     manifest payload length
//	...     ...   manifest payload: the serialized shard Manifest
//
// Version 1 files (PR 2) end after the index payload, which then runs to
// EOF; the decoder still reads their index section, so upgrading the
// binary never invalidates existing caches — it only leaves the dump
// section absent until the next rewrite. Version 2 files end after the
// dump payload: their index and dump sections remain fully readable, only
// the shard manifest is absent, which disables delta analysis until the
// next rewrite, never correctness.
//
// Postings maps are encoded with sorted keys and delta-varint line lists,
// so files are deterministic for a given index. Every validation failure —
// wrong magic, unknown version, stale content hash or fingerprint,
// line-count mismatch, CRC mismatch, truncation — is an error the caller
// treats as a cache miss: rebuild from the app and overwrite the file,
// never fail the analysis. A damaged manifest section alone decodes as
// "no manifest" (DecodeManifest reports ok=false), which callers treat as
// "run the full analysis" — the manifest can only ever save work.

// CodecVersion is the on-disk format version. Bump it whenever the
// payload layout or the token families change; old files then decode as
// stale and are rebuilt silently. Version 2 added the dump section (and
// the index payload length that delimits it); version 3 added the shard
// manifest section. Version-1 index sections and version-2 dump sections
// remain readable.
const CodecVersion = 3

// codecVersionNoManifest is the PR 3 layout: index + dump sections, no
// shard manifest; the dump payload runs to EOF.
const codecVersionNoManifest = 2

// codecVersionIndexOnly is the PR 2 layout: no index-length field, no dump
// section, index payload running to EOF.
const codecVersionIndexOnly = 1

const (
	codecMagic                = "BDIX"
	codecHeaderSizeV1         = 24
	codecHeaderSize           = 28
	dumpSectionHeaderSize     = 16 // fingerprint u64 + CRC u32 + length u32
	manifestSectionHeaderSize = 8  // CRC u32 + length u32
)

// CacheFileExt is the filename extension of persistent cache bundles.
const CacheFileExt = ".bdx"

// DumpHash returns the FNV-64a content hash of the dump text — the
// staleness check of the persistent cache.
func DumpHash(t *Text) uint64 {
	h := fnv.New64a()
	h.Write([]byte(t.full))
	return h.Sum64()
}

// AppFingerprint hashes the encoded dex files of an app (FNV-64a over
// count, sizes and bytes). It is the staleness check of the bundle's dump
// section: unlike DumpHash it can be computed without disassembling, which
// is what lets a warm engine run validate a cached dump before — instead
// of — rendering one. Encoding is deterministic, so the fingerprint is
// stable across runs and machines. 0 is reserved for "unknown" and never
// matches.
func AppFingerprint(dexes []*dex.File) uint64 {
	h := fnv.New64a()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(dexes)))
	h.Write(n[:])
	for _, d := range dexes {
		b := dex.Encode(d)
		binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	fp := h.Sum64()
	if fp == 0 {
		fp = 1
	}
	return fp
}

// shardsOf flattens a Source into its shard list.
func shardsOf(src Source) ([]*Index, error) {
	switch s := src.(type) {
	case *Index:
		return []*Index{s}, nil
	case *ShardedIndex:
		return s.shards, nil
	}
	return nil, fmt.Errorf("dexdump: cannot encode index source %T", src)
}

// EncodeBundle serializes the dump text, its index (single or sharded)
// and its shard manifest into the bundle format. fingerprint identifies
// the app the dump was rendered from (see AppFingerprint); 0 marks it
// unknown, in which case the dump section is written but will never
// validate on probe. plan is the shard plan the index was built with and
// determines the manifest's span-to-shard assignment; nil (or a plan for
// a different dump) records a single-shard manifest.
func EncodeBundle(t *Text, src Source, fingerprint uint64, plan *ShardPlan) ([]byte, error) {
	shards, err := shardsOf(src)
	if err != nil {
		return nil, err
	}
	if len(shards) > 0xffff {
		return nil, fmt.Errorf("dexdump: %d shards exceed the codec limit", len(shards))
	}
	var indexPayload []byte
	for _, sh := range shards {
		indexPayload = appendShard(indexPayload, sh)
	}
	dumpPayload := appendDump(nil, t)
	manifestPayload := appendManifest(nil, BuildManifest(t, plan))

	buf := make([]byte, codecHeaderSize, codecHeaderSize+len(indexPayload)+
		dumpSectionHeaderSize+len(dumpPayload)+manifestSectionHeaderSize+len(manifestPayload))
	copy(buf[0:4], codecMagic)
	binary.LittleEndian.PutUint16(buf[4:6], CodecVersion)
	binary.LittleEndian.PutUint16(buf[6:8], uint16(len(shards)))
	binary.LittleEndian.PutUint64(buf[8:16], DumpHash(t))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(t.LineCount()))
	binary.LittleEndian.PutUint32(buf[20:24], crc32.ChecksumIEEE(indexPayload))
	binary.LittleEndian.PutUint32(buf[24:28], uint32(len(indexPayload)))
	buf = append(buf, indexPayload...)

	var dh [dumpSectionHeaderSize]byte
	binary.LittleEndian.PutUint64(dh[0:8], fingerprint)
	binary.LittleEndian.PutUint32(dh[8:12], crc32.ChecksumIEEE(dumpPayload))
	binary.LittleEndian.PutUint32(dh[12:16], uint32(len(dumpPayload)))
	buf = append(buf, dh[:]...)
	buf = append(buf, dumpPayload...)

	var mh [manifestSectionHeaderSize]byte
	binary.LittleEndian.PutUint32(mh[0:4], crc32.ChecksumIEEE(manifestPayload))
	binary.LittleEndian.PutUint32(mh[4:8], uint32(len(manifestPayload)))
	buf = append(buf, mh[:]...)
	return append(buf, manifestPayload...), nil
}

// indexSection validates the common header fields and returns the index
// payload of a v1, v2 or v3 file, without touching the later sections.
func indexSection(data []byte) ([]byte, error) {
	if len(data) < codecHeaderSizeV1 {
		return nil, fmt.Errorf("dexdump: bundle truncated: %d bytes", len(data))
	}
	if string(data[0:4]) != codecMagic {
		return nil, fmt.Errorf("dexdump: bundle bad magic %q", data[0:4])
	}
	switch v := binary.LittleEndian.Uint16(data[4:6]); v {
	case codecVersionIndexOnly:
		return data[codecHeaderSizeV1:], nil
	case codecVersionNoManifest, CodecVersion:
		if len(data) < codecHeaderSize {
			return nil, fmt.Errorf("dexdump: bundle header truncated: %d bytes", len(data))
		}
		n := int(binary.LittleEndian.Uint32(data[24:28]))
		if n > len(data)-codecHeaderSize {
			return nil, fmt.Errorf("dexdump: index section claims %d bytes, %d remain", n, len(data)-codecHeaderSize)
		}
		return data[codecHeaderSize : codecHeaderSize+n], nil
	default:
		return nil, fmt.Errorf("dexdump: bundle version %d, want %d (or legacy %d/%d)",
			v, CodecVersion, codecVersionIndexOnly, codecVersionNoManifest)
	}
}

// DecodeIndexFile parses the index section of a bundle (or of a legacy
// index-only file) and validates it against the dump text. A one-shard
// section decodes to a plain *Index, a multi-shard section to a
// *ShardedIndex. Any validation failure returns an error; the caller
// rebuilds from the dump.
func DecodeIndexFile(data []byte, t *Text) (Source, error) {
	payload, err := indexSection(data)
	if err != nil {
		return nil, err
	}
	shardCount := int(binary.LittleEndian.Uint16(data[6:8]))
	if shardCount == 0 {
		return nil, fmt.Errorf("dexdump: index section has no shards")
	}
	if h := binary.LittleEndian.Uint64(data[8:16]); h != DumpHash(t) {
		return nil, fmt.Errorf("dexdump: bundle stale: content hash mismatch")
	}
	if n := int(binary.LittleEndian.Uint32(data[16:20])); n != t.LineCount() {
		return nil, fmt.Errorf("dexdump: bundle stale: %d lines, dump has %d", n, t.LineCount())
	}
	if crc := binary.LittleEndian.Uint32(data[20:24]); crc != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("dexdump: index payload CRC mismatch")
	}
	shards := make([]*Index, shardCount)
	rest := payload
	var err2 error
	for i := range shards {
		shards[i], rest, err2 = decodeShard(rest, t.LineCount())
		if err2 != nil {
			return nil, fmt.Errorf("dexdump: index section shard %d: %w", i, err2)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("dexdump: index section has %d trailing bytes", len(rest))
	}
	if shardCount == 1 {
		idx := shards[0]
		idx.lines = t.LineCount()
		return idx, nil
	}
	return &ShardedIndex{shards: shards, lines: t.LineCount()}, nil
}

// DecodeBundleDump parses and validates the dump section of a bundle,
// reconstructing the dexdump.Text without any disassembly. Unlike the
// index section it cannot be validated against an existing dump — that is
// its entire point — so it validates against itself and against the app:
// the stored fingerprint must equal the caller's (computed from the app's
// dex files), the payload CRC must match, and the decoded text must hash
// back to the header's dump hash and line count. Legacy index-only files
// have no dump section and always miss.
func DecodeBundleDump(data []byte, fingerprint uint64) (*Text, error) {
	if len(data) < codecHeaderSize {
		return nil, fmt.Errorf("dexdump: bundle truncated: %d bytes", len(data))
	}
	if string(data[0:4]) != codecMagic {
		return nil, fmt.Errorf("dexdump: bundle bad magic %q", data[0:4])
	}
	v := binary.LittleEndian.Uint16(data[4:6])
	if v != CodecVersion && v != codecVersionNoManifest {
		return nil, fmt.Errorf("dexdump: bundle version %d has no dump section", v)
	}
	indexLen := int(binary.LittleEndian.Uint32(data[24:28]))
	if indexLen > len(data)-codecHeaderSize-dumpSectionHeaderSize {
		return nil, fmt.Errorf("dexdump: bundle has no room for a dump section")
	}
	sec := data[codecHeaderSize+indexLen:]
	if fingerprint == 0 {
		return nil, fmt.Errorf("dexdump: cannot validate a dump section without an app fingerprint")
	}
	if fp := binary.LittleEndian.Uint64(sec[0:8]); fp != fingerprint {
		return nil, fmt.Errorf("dexdump: dump section stale: app fingerprint mismatch")
	}
	n := int(binary.LittleEndian.Uint32(sec[12:16]))
	if n > len(sec)-dumpSectionHeaderSize {
		return nil, fmt.Errorf("dexdump: dump payload claims %d bytes, %d remain", n, len(sec)-dumpSectionHeaderSize)
	}
	payload := sec[dumpSectionHeaderSize : dumpSectionHeaderSize+n]
	switch trailing := sec[dumpSectionHeaderSize+n:]; {
	case v == codecVersionNoManifest && len(trailing) != 0:
		return nil, fmt.Errorf("dexdump: bundle has %d trailing bytes", len(trailing))
	case v == CodecVersion && len(trailing) < manifestSectionHeaderSize:
		return nil, fmt.Errorf("dexdump: bundle has no room for a manifest section")
	case v == CodecVersion:
		// Frame the manifest section so appended garbage still decodes as
		// an error; its payload integrity is DecodeManifest's concern.
		mlen := int(binary.LittleEndian.Uint32(trailing[4:8]))
		if len(trailing) != manifestSectionHeaderSize+mlen {
			return nil, fmt.Errorf("dexdump: manifest section claims %d bytes, %d remain",
				mlen, len(trailing)-manifestSectionHeaderSize)
		}
	}
	if crc := binary.LittleEndian.Uint32(sec[8:12]); crc != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("dexdump: dump payload CRC mismatch")
	}
	t, err := decodeDump(payload)
	if err != nil {
		return nil, fmt.Errorf("dexdump: dump section: %w", err)
	}
	if h := binary.LittleEndian.Uint64(data[8:16]); h != DumpHash(t) {
		return nil, fmt.Errorf("dexdump: decoded dump does not hash back to the header")
	}
	if n := int(binary.LittleEndian.Uint32(data[16:20])); n != t.LineCount() {
		return nil, fmt.Errorf("dexdump: decoded dump has %d lines, header says %d", t.LineCount(), n)
	}
	return t, nil
}

// CachePath returns the bundle path for an app inside dir.
func CachePath(dir, appName string) string {
	return filepath.Join(dir, appName+CacheFileExt)
}

// WriteBundle atomically persists the dump, its index and its shard
// manifest next to path (temp file + rename), creating the directory if
// needed.
func WriteBundle(path string, t *Text, src Source, fingerprint uint64, plan *ShardPlan) error {
	data, err := EncodeBundle(t, src, fingerprint, plan)
	if err != nil {
		return err
	}
	return WriteBundleBytes(path, data)
}

// WriteBundleBytes atomically persists already-encoded bundle bytes (temp
// file + rename), creating the directory if needed. Callers that feed both
// the disk cache and an in-memory store encode once and reuse the bytes.
func WriteBundleBytes(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bdx-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadIndexCache reads a bundle and validates its index section against
// the dump text.
func LoadIndexCache(path string, t *Text) (Source, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeIndexFile(data, t)
}

// LoadBundleDump reads a bundle and validates + reconstructs its dump
// section for the app with the given fingerprint.
func LoadBundleDump(path string, fingerprint uint64) (*Text, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeBundleDump(data, fingerprint)
}

// DecodeManifest parses and validates the shard-manifest section of a
// bundle. Unlike every other decoder in this file it reports failure as
// ok=false instead of an error: a missing or damaged manifest never
// invalidates the bundle's index or dump — it only disables the delta
// fast path, so callers fall back to a silent full analysis. Validation
// covers the section CRC, the payload bounds, the shard assignment range
// and the total line count against the bundle header, so a manifest that
// decodes ok is internally consistent with its bundle.
func DecodeManifest(data []byte) (*Manifest, bool) {
	if len(data) < codecHeaderSize || string(data[0:4]) != codecMagic {
		return nil, false
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != CodecVersion {
		return nil, false
	}
	indexLen := int(binary.LittleEndian.Uint32(data[24:28]))
	if indexLen < 0 || indexLen > len(data)-codecHeaderSize-dumpSectionHeaderSize {
		return nil, false
	}
	sec := data[codecHeaderSize+indexLen:]
	dumpLen := int(binary.LittleEndian.Uint32(sec[12:16]))
	if dumpLen < 0 || dumpLen > len(sec)-dumpSectionHeaderSize-manifestSectionHeaderSize {
		return nil, false
	}
	msec := sec[dumpSectionHeaderSize+dumpLen:]
	mlen := int(binary.LittleEndian.Uint32(msec[4:8]))
	if mlen < 0 || len(msec) != manifestSectionHeaderSize+mlen {
		return nil, false
	}
	payload := msec[manifestSectionHeaderSize:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(msec[0:4]) {
		return nil, false
	}
	m, err := decodeManifestPayload(payload)
	if err != nil {
		return nil, false
	}
	if m.TotalLines() != int(binary.LittleEndian.Uint32(data[16:20])) {
		return nil, false
	}
	return m, true
}

// appendManifest serializes a Manifest: shard count, entry count, then
// per entry name, fingerprint, line count and shard assignment.
func appendManifest(buf []byte, m *Manifest) []byte {
	buf = binary.AppendUvarint(buf, uint64(m.Shards))
	buf = binary.AppendUvarint(buf, uint64(len(m.Entries)))
	var fp [8]byte
	for _, e := range m.Entries {
		buf = appendString(buf, e.Name)
		binary.LittleEndian.PutUint64(fp[:], e.Fingerprint)
		buf = append(buf, fp[:]...)
		buf = binary.AppendUvarint(buf, uint64(e.Lines))
		buf = binary.AppendUvarint(buf, uint64(e.Shard))
	}
	return buf
}

// decodeManifestPayload reconstructs a Manifest, bounds-checking every
// count so a corrupt payload decodes as an error, never a panic.
func decodeManifestPayload(buf []byte) (*Manifest, error) {
	shards, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	if shards == 0 || shards > 0xffff {
		return nil, fmt.Errorf("manifest claims %d shards", shards)
	}
	count, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	if count > uint64(len(buf)) {
		return nil, fmt.Errorf("manifest claims %d entries, %d bytes remain", count, len(buf))
	}
	m := &Manifest{Entries: make([]ManifestEntry, count), Shards: int(shards)}
	for i := range m.Entries {
		var e ManifestEntry
		if e.Name, buf, err = readString(buf); err != nil {
			return nil, err
		}
		if len(buf) < 8 {
			return nil, fmt.Errorf("manifest entry %d truncated", i)
		}
		e.Fingerprint = binary.LittleEndian.Uint64(buf[:8])
		buf = buf[8:]
		var lines, shard uint64
		if lines, buf, err = readUvarint(buf); err != nil {
			return nil, err
		}
		if shard, buf, err = readUvarint(buf); err != nil {
			return nil, err
		}
		if lines > 1<<32 {
			return nil, fmt.Errorf("manifest entry %d claims %d lines", i, lines)
		}
		if shard >= shards {
			return nil, fmt.Errorf("manifest entry %d assigned to shard %d of %d", i, shard, shards)
		}
		e.Lines = int(lines)
		e.Shard = int(shard)
		m.Entries[i] = e
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after the manifest payload", len(buf))
	}
	return m, nil
}

// ShardPayloads splits a v3 bundle's index section into its per-shard
// encoded payloads, paired with the manifest's shard fingerprints — the
// feed of the service's cross-app shard store, which shares one postings
// blob between every bundle whose shard has identical class contents.
// ok=false on any inconsistency (no manifest, damaged index section,
// shard-count mismatch); the store then simply learns nothing.
func ShardPayloads(data []byte) (fps []uint64, payloads [][]byte, ok bool) {
	m, mok := DecodeManifest(data)
	if !mok {
		return nil, nil, false
	}
	payload, err := indexSection(data)
	if err != nil {
		return nil, nil, false
	}
	// The payload split below trusts the index section's framing, so the
	// section CRC must hold — the store must never learn a damaged blob.
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[20:24]) {
		return nil, nil, false
	}
	shardCount := int(binary.LittleEndian.Uint16(data[6:8]))
	if shardCount != m.Shards {
		return nil, nil, false
	}
	lineCount := int(binary.LittleEndian.Uint32(data[16:20]))
	payloads = make([][]byte, shardCount)
	rest := payload
	for i := 0; i < shardCount; i++ {
		before := len(rest)
		if _, rest, err = decodeShard(rest, lineCount); err != nil {
			return nil, nil, false
		}
		payloads[i] = payload[len(payload)-before : len(payload)-len(rest)]
	}
	return m.ShardFingerprints(), payloads, true
}

// appendDump serializes a Text: the full rendered dump (lines are
// recovered by splitting on '\n'), the method table, the per-line method
// attribution and the class spans.
func appendDump(buf []byte, t *Text) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(t.full)))
	buf = append(buf, t.full...)

	buf = binary.AppendUvarint(buf, uint64(len(t.methods)))
	for _, m := range t.methods {
		buf = appendString(buf, m.Class)
		buf = appendString(buf, m.Name)
		buf = appendString(buf, string(m.Ret))
		buf = binary.AppendUvarint(buf, uint64(len(m.Params)))
		for _, p := range m.Params {
			buf = appendString(buf, string(p))
		}
	}

	// methodOfLine: index+1 per line, 0 meaning "no method".
	for _, idx := range t.methodOfLine {
		buf = binary.AppendUvarint(buf, uint64(idx+1))
	}

	// Class spans tile [0, LineCount()), so lengths suffice.
	buf = binary.AppendUvarint(buf, uint64(len(t.spans)))
	for _, sp := range t.spans {
		buf = appendString(buf, sp.Name)
		buf = binary.AppendUvarint(buf, uint64(sp.End-sp.Start))
	}
	return buf
}

// decodeDump reconstructs a Text from its serialized form, bounds-checking
// every count so a corrupt payload decodes as an error, never a panic.
func decodeDump(buf []byte) (*Text, error) {
	fullLen, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	if fullLen > uint64(len(buf)) {
		return nil, fmt.Errorf("full text claims %d bytes, %d remain", fullLen, len(buf))
	}
	t := &Text{full: string(buf[:fullLen])}
	buf = buf[fullLen:]
	if t.full != "" {
		if t.full[len(t.full)-1] != '\n' {
			return nil, fmt.Errorf("full text does not end in a newline")
		}
		t.lines = strings.Split(t.full[:len(t.full)-1], "\n")
	}

	methodCount, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	if methodCount > uint64(len(buf)) {
		return nil, fmt.Errorf("method table claims %d entries, %d bytes remain", methodCount, len(buf))
	}
	t.methods = make([]dex.MethodRef, methodCount)
	for i := range t.methods {
		var m dex.MethodRef
		var ret string
		if m.Class, buf, err = readString(buf); err != nil {
			return nil, err
		}
		if m.Name, buf, err = readString(buf); err != nil {
			return nil, err
		}
		if ret, buf, err = readString(buf); err != nil {
			return nil, err
		}
		m.Ret = dex.TypeDesc(ret)
		var params uint64
		if params, buf, err = readUvarint(buf); err != nil {
			return nil, err
		}
		if params > uint64(len(buf)) {
			return nil, fmt.Errorf("method %d claims %d params", i, params)
		}
		m.Params = make([]dex.TypeDesc, params)
		for j := range m.Params {
			var p string
			if p, buf, err = readString(buf); err != nil {
				return nil, err
			}
			m.Params[j] = dex.TypeDesc(p)
		}
		t.methods[i] = m
	}

	t.methodOfLine = make([]int, len(t.lines))
	for i := range t.methodOfLine {
		var v uint64
		if v, buf, err = readUvarint(buf); err != nil {
			return nil, err
		}
		if v > uint64(len(t.methods)) {
			return nil, fmt.Errorf("line %d attributed to method %d of %d", i, v, len(t.methods))
		}
		t.methodOfLine[i] = int(v) - 1
	}

	spanCount, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	if spanCount > uint64(len(t.lines))+1 {
		return nil, fmt.Errorf("%d class spans for a %d-line dump", spanCount, len(t.lines))
	}
	t.spans = make([]ClassSpan, spanCount)
	at := 0
	for i := range t.spans {
		var name string
		if name, buf, err = readString(buf); err != nil {
			return nil, err
		}
		var length uint64
		if length, buf, err = readUvarint(buf); err != nil {
			return nil, err
		}
		if length > uint64(len(t.lines)-at) {
			return nil, fmt.Errorf("class span %d overruns the dump", i)
		}
		t.spans[i] = ClassSpan{Name: name, Start: at, End: at + int(length)}
		at += int(length)
	}
	if at != len(t.lines) {
		return nil, fmt.Errorf("class spans cover %d of %d lines", at, len(t.lines))
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after the dump payload", len(buf))
	}
	return t, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	n, buf, err := readUvarint(buf)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(buf)) {
		return "", nil, fmt.Errorf("truncated string")
	}
	return string(buf[:n]), buf[n:], nil
}

// appendShard encodes one shard: the lines/postings counters, all nine
// postings maps (sorted keys, delta-varint lists) and the four side lists.
func appendShard(buf []byte, x *Index) []byte {
	buf = binary.AppendUvarint(buf, uint64(x.lines))
	buf = binary.AppendUvarint(buf, uint64(x.postings))
	for _, m := range x.maps() {
		buf = appendMap(buf, *m)
	}
	for _, l := range x.sideLists() {
		buf = appendPostings(buf, *l)
	}
	return buf
}

// maps returns the postings maps in fixed codec order.
func (x *Index) maps() []*map[string][]int32 {
	return []*map[string][]int32{
		&x.invokeBySig, &x.invokeByName, &x.invokeByNameP, &x.ctorByPrefix,
		&x.newInstance, &x.constClass, &x.constString, &x.fieldBySig, &x.classUse,
	}
}

// sideLists returns the side lists in fixed codec order.
func (x *Index) sideLists() []*[]int32 {
	return []*[]int32{&x.oddStrings, &x.oddFields, &x.oddCtors, &x.oddInvokes}
}

func appendMap(buf []byte, m map[string][]int32) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = appendPostings(buf, m[k])
	}
	return buf
}

// appendPostings delta-encodes an ascending postings list.
func appendPostings(buf []byte, p []int32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p)))
	prev := int32(0)
	for _, n := range p {
		buf = binary.AppendUvarint(buf, uint64(n-prev))
		prev = n
	}
	return buf
}

func decodeShard(buf []byte, maxLines int) (*Index, []byte, error) {
	x := newIndex(0)
	lines, buf, err := readUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	postings, buf, err := readUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if lines > uint64(maxLines) {
		return nil, nil, fmt.Errorf("shard claims %d lines, dump has %d", lines, maxLines)
	}
	x.lines = int(lines)
	x.postings = int(postings)
	for _, m := range x.maps() {
		*m, buf, err = decodeMap(buf, maxLines)
		if err != nil {
			return nil, nil, err
		}
	}
	for _, l := range x.sideLists() {
		*l, buf, err = decodePostings(buf, maxLines)
		if err != nil {
			return nil, nil, err
		}
	}
	return x, buf, nil
}

func decodeMap(buf []byte, maxLines int) (map[string][]int32, []byte, error) {
	count, buf, err := readUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	m := make(map[string][]int32, count)
	for i := uint64(0); i < count; i++ {
		var klen uint64
		klen, buf, err = readUvarint(buf)
		if err != nil {
			return nil, nil, err
		}
		if uint64(len(buf)) < klen {
			return nil, nil, fmt.Errorf("truncated map key")
		}
		key := string(buf[:klen])
		buf = buf[klen:]
		var p []int32
		p, buf, err = decodePostings(buf, maxLines)
		if err != nil {
			return nil, nil, err
		}
		m[key] = p
	}
	return m, buf, nil
}

// decodePostings rebuilds a delta-encoded postings list, rejecting any
// line outside [0, maxLines) and any non-ascending sequence: a lookup
// hands these lines straight to the dump text, so a CRC-colliding or
// hand-crafted file must decode as a miss, never panic later.
func decodePostings(buf []byte, maxLines int) ([]int32, []byte, error) {
	count, buf, err := readUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if count == 0 {
		return nil, buf, nil
	}
	if count > uint64(maxLines) {
		return nil, nil, fmt.Errorf("%d postings for a %d-line dump", count, maxLines)
	}
	p := make([]int32, 0, count)
	prev := int64(-1)
	for i := uint64(0); i < count; i++ {
		var d uint64
		d, buf, err = readUvarint(buf)
		if err != nil {
			return nil, nil, err
		}
		if d > uint64(maxLines) {
			return nil, nil, fmt.Errorf("posting delta %d out of range", d)
		}
		if i == 0 {
			prev = int64(d)
		} else {
			if d == 0 {
				return nil, nil, fmt.Errorf("postings not strictly ascending")
			}
			prev += int64(d)
		}
		if prev >= int64(maxLines) {
			return nil, nil, fmt.Errorf("posting line %d out of range (dump has %d lines)", prev, maxLines)
		}
		p = append(p, int32(prev))
	}
	return p, buf, nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated varint")
	}
	return v, buf[n:], nil
}
