package dexdump

import (
	"fmt"
	"strings"
	"testing"

	"backdroid/internal/dex"
)

// shardFixture builds a file with classes across several packages so the
// plans have something to partition.
func shardFixture(t *testing.T) (*dex.File, *Text) {
	t.Helper()
	f := dex.NewFile()
	objInit := dex.NewMethodRef("java.lang.Object", "<init>", dex.Void)
	for i, name := range []string{
		"com.alpha.One", "com.alpha.Two", "com.beta.Three",
		"org.gamma.Four", "org.gamma.sub.Five", "net.delta.Six",
	} {
		c := dex.NewClass(name)
		ctor := c.Constructor()
		ctor.InvokeDirect(objInit, ctor.This()).ReturnVoid().Done()
		m := c.Method("work", dex.Void)
		r := m.Reg()
		m.ConstString(r, fmt.Sprintf("payload-%d", i)).
			ConstClass(m.Reg(), "com.alpha.One").
			ReturnVoid().Done()
		if err := f.AddClass(c.Build()); err != nil {
			t.Fatal(err)
		}
	}
	return f, Disassemble(f)
}

func TestClassSpansTileDump(t *testing.T) {
	f, text := shardFixture(t)
	spans := text.ClassSpans()
	if len(spans) != len(f.Classes()) {
		t.Fatalf("spans = %d, classes = %d", len(spans), len(f.Classes()))
	}
	next := 0
	for i, sp := range spans {
		if sp.Start != next {
			t.Errorf("span %d starts at %d, want %d (spans must tile)", i, sp.Start, next)
		}
		if sp.End <= sp.Start {
			t.Errorf("span %d empty: [%d,%d)", i, sp.Start, sp.End)
		}
		if sp.Name != f.Classes()[i].Name {
			t.Errorf("span %d name = %s, want %s", i, sp.Name, f.Classes()[i].Name)
		}
		next = sp.End
	}
	if next != text.LineCount() {
		t.Errorf("spans end at %d, dump has %d lines", next, text.LineCount())
	}
}

func TestPerDexPlanContiguous(t *testing.T) {
	_, text := shardFixture(t)
	plan := PerDexPlan(text, []int{2, 3, 1})
	if plan.Shards() != 3 || plan.Kind != "per-dex" {
		t.Fatalf("plan = %+v", plan)
	}
	want := []int{0, 0, 1, 1, 1, 2}
	for i, w := range want {
		if plan.assign[i] != w {
			t.Errorf("class %d assigned to shard %d, want %d", i, plan.assign[i], w)
		}
	}
	total := 0
	for _, n := range plan.ShardLines() {
		total += n
	}
	if total != text.LineCount() {
		t.Errorf("shard lines sum to %d, dump has %d", total, text.LineCount())
	}
	if plan.MaxShardLines() <= 0 || plan.MaxShardLines() > text.LineCount() {
		t.Errorf("max shard lines = %d out of range", plan.MaxShardLines())
	}
}

func TestPerDexPlanBadCountsFallBack(t *testing.T) {
	_, text := shardFixture(t)
	for _, counts := range [][]int{nil, {1, 2}, {7}} {
		plan := PerDexPlan(text, counts)
		if plan.Shards() != 1 || plan.Kind != "single" {
			t.Errorf("counts %v: plan = %+v, want single-shard fallback", counts, plan)
		}
	}
}

func TestPackagePrefixPlanDeterministicAndPackageLocal(t *testing.T) {
	_, text := shardFixture(t)
	a := PackagePrefixPlan(text, 3)
	b := PackagePrefixPlan(text, 3)
	for i := range a.assign {
		if a.assign[i] != b.assign[i] {
			t.Fatalf("plan not deterministic at class %d: %d vs %d", i, a.assign[i], b.assign[i])
		}
	}
	// Same two-segment package prefix -> same shard.
	byName := make(map[string]int)
	for i, sp := range text.ClassSpans() {
		byName[sp.Name] = a.assign[i]
	}
	if byName["com.alpha.One"] != byName["com.alpha.Two"] {
		t.Error("com.alpha classes split across shards")
	}
	if byName["org.gamma.Four"] != byName["org.gamma.sub.Five"] {
		t.Error("org.gamma classes split across shards")
	}
}

// lookups exercises every Source lookup with tokens present in the
// fixture plus misses.
func lookups(src Source) map[string][]int32 {
	out := make(map[string][]int32)
	out["invoke"] = src.InvokeBySig("Ljava/lang/Object;.<init>:()V")
	out["invoke-name"] = src.InvokeByName(".<init>:()V")
	out["invoke-prefix"] = src.InvokeByNamePrefix(".<init>:")
	out["invoke-prefix-miss"] = src.InvokeByNamePrefix(".nosuch:")
	out["ctor"] = src.CtorByPrefix("Ljava/lang/Object;.<init>:")
	out["new"] = src.NewInstance("Lcom/alpha/One;")
	out["const-class"] = src.ConstClass("Lcom/alpha/One;")
	out["const-string"] = src.ConstString("payload-3")
	out["field"] = src.FieldBySig("Lcom/alpha/One;.f:I")
	out["class-use"] = src.ClassUse("Lcom/alpha/One;")
	out["class-use-2"] = src.ClassUse("Lorg/gamma/sub/Five;")
	out["class-use-miss"] = src.ClassUse("Lno/such/Class;")
	return out
}

func TestShardedIndexMatchesSingleIndex(t *testing.T) {
	_, text := shardFixture(t)
	single := BuildIndex(text)
	for _, shards := range []int{1, 2, 3, 5, 16} {
		for _, workers := range []int{1, 4} {
			plan := PackagePrefixPlan(text, shards)
			sharded := BuildShardedIndex(text, plan, workers)
			if sharded.ShardCount() != shards {
				t.Fatalf("shard count = %d, want %d", sharded.ShardCount(), shards)
			}
			if sharded.Lines() != single.Lines() {
				t.Errorf("lines = %d, want %d", sharded.Lines(), single.Lines())
			}
			if sharded.Postings() != single.Postings() {
				t.Errorf("shards=%d: postings = %d, single index has %d",
					shards, sharded.Postings(), single.Postings())
			}
			want := lookups(single)
			got := lookups(sharded)
			for name := range want {
				if !equalPostings(got[name], want[name]) {
					t.Errorf("shards=%d workers=%d: %s postings = %v, single = %v",
						shards, workers, name, got[name], want[name])
				}
			}
		}
	}
}

func TestPerDexShardedIndexMatchesSingle(t *testing.T) {
	_, text := shardFixture(t)
	single := BuildIndex(text)
	sharded := BuildShardedIndex(text, PerDexPlan(text, []int{2, 3, 1}), 2)
	want := lookups(single)
	got := lookups(sharded)
	for name := range want {
		if !equalPostings(got[name], want[name]) {
			t.Errorf("%s postings = %v, single = %v", name, got[name], want[name])
		}
	}
}

func TestShardedLookupsAscending(t *testing.T) {
	_, text := shardFixture(t)
	sharded := BuildShardedIndex(text, PackagePrefixPlan(text, 4), 2)
	for name, p := range lookups(sharded) {
		for i := 1; i < len(p); i++ {
			if p[i] <= p[i-1] {
				t.Errorf("%s postings not strictly ascending: %v", name, p)
				break
			}
		}
	}
}

func TestInvokeByNamePrefixCoversQuotedLiterals(t *testing.T) {
	f := dex.NewFile()
	c := dex.NewClass("com.spoof.Logger")
	m := c.Method("log", dex.Void)
	m.ConstString(m.Reg(), "saw invoke-virtual {v0}, Lx/Y;.startActivity:(L)V").
		ReturnVoid().Done()
	if err := f.AddClass(c.Build()); err != nil {
		t.Fatal(err)
	}
	text := Disassemble(f)
	idx := BuildIndex(text)
	got := idx.InvokeByNamePrefix(".startActivity:")
	want := linesMatching(text, func(line string) bool {
		return strings.Contains(line, "invoke-") && strings.Contains(line, ".startActivity:")
	})
	if len(want) == 0 {
		t.Fatal("spoof literal did not fire")
	}
	// Candidates must be a superset of the linear matches.
	have := make(map[int32]bool, len(got))
	for _, n := range got {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("linear match line %d missing from prefix candidates %v", n, got)
		}
	}
}
