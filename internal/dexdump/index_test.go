package dexdump

import (
	"strings"
	"testing"

	"backdroid/internal/dex"
)

// indexFixture builds a small two-class file exercising every token family
// the index extracts.
func indexFixture(t *testing.T) (*Text, *Index) {
	t.Helper()
	f := dex.NewFile()
	objInit := dex.NewMethodRef("java.lang.Object", "<init>", dex.Void)
	helperField := dex.NewFieldRef("com.idx.Helper", "state", dex.Int)

	helper := dex.NewClass("com.idx.Helper").Field("state", dex.Int)
	hc := helper.Constructor()
	hc.InvokeDirect(objInit, hc.This()).ReturnVoid().Done()
	work := helper.Method("work", dex.Void)
	r := work.Reg()
	work.IGet(r, work.This(), helperField).
		IPut(r, work.This(), helperField).
		ReturnVoid().Done()
	if err := f.AddClass(helper.Build()); err != nil {
		t.Fatal(err)
	}

	main := dex.NewClass("com.idx.Main")
	mm := main.Method("main", dex.Void)
	h := mm.Reg()
	helperInit := dex.NewMethodRef("com.idx.Helper", "<init>", dex.Void)
	mm.New(h, "com.idx.Helper").
		InvokeDirect(helperInit, h).
		InvokeVirtual(dex.NewMethodRef("com.idx.Helper", "work", dex.Void), h).
		ConstString(mm.Reg(), "AES/ECB").
		ConstClass(mm.Reg(), "com.idx.Helper").
		ReturnVoid().Done()
	if err := f.AddClass(main.Build()); err != nil {
		t.Fatal(err)
	}

	text := Disassemble(f)
	return text, BuildIndex(text)
}

func linesMatching(text *Text, pred func(string) bool) []int32 {
	var out []int32
	for i, line := range text.Lines() {
		if pred(line) {
			out = append(out, int32(i))
		}
	}
	return out
}

func equalPostings(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIndexCoversAllTokenFamilies(t *testing.T) {
	text, idx := indexFixture(t)

	if idx.Lines() != text.LineCount() {
		t.Errorf("index lines = %d, dump lines = %d", idx.Lines(), text.LineCount())
	}
	if idx.Postings() == 0 {
		t.Fatal("empty index for non-empty dump")
	}

	if got := idx.InvokeBySig("Lcom/idx/Helper;.work:()V"); len(got) != 1 {
		t.Errorf("invoke postings = %v", got)
	}
	if got := idx.InvokeByName(".work:()V"); len(got) != 1 {
		t.Errorf("invoke-by-name postings = %v", got)
	}
	if got := idx.CtorByPrefix("Lcom/idx/Helper;.<init>:"); len(got) != 1 {
		t.Errorf("ctor postings = %v (the allocation site in main)", got)
	}
	if got := idx.CtorByPrefix("Ljava/lang/Object;.<init>:"); len(got) != 1 {
		t.Errorf("object ctor postings = %v (Helper's ctor calls super)", got)
	}
	if got := idx.NewInstance("Lcom/idx/Helper;"); len(got) != 1 {
		t.Errorf("new-instance postings = %v", got)
	}
	if got := idx.ConstClass("Lcom/idx/Helper;"); len(got) != 1 {
		t.Errorf("const-class postings = %v", got)
	}
	if got := idx.ConstString("AES/ECB"); len(got) != 1 {
		t.Errorf("const-string postings = %v", got)
	}
	if got := idx.FieldBySig("Lcom/idx/Helper;.state:I"); len(got) != 2 {
		t.Errorf("field postings = %v (one iget + one iput)", got)
	}
	if got := idx.ConstString("missing"); got != nil {
		t.Errorf("phantom const-string postings = %v", got)
	}
}

func TestIndexClassUseMatchesGrep(t *testing.T) {
	text, idx := indexFixture(t)
	for _, desc := range []string{"Lcom/idx/Helper;", "Lcom/idx/Main;", "Ljava/lang/Object;"} {
		want := linesMatching(text, func(line string) bool {
			return strings.Contains(line, desc)
		})
		got := idx.ClassUse(desc)
		if !equalPostings(got, want) {
			t.Errorf("class-use %s: postings %v, grep %v", desc, got, want)
		}
	}
}

func TestIndexPostingsAscendingUnique(t *testing.T) {
	_, idx := indexFixture(t)
	check := func(name string, p []int32) {
		for i := 1; i < len(p); i++ {
			if p[i] <= p[i-1] {
				t.Errorf("%s postings not strictly ascending: %v", name, p)
				return
			}
		}
	}
	for tok, p := range idx.classUse {
		check("classUse["+tok+"]", p)
	}
	for tok, p := range idx.invokeBySig {
		check("invoke["+tok+"]", p)
	}
	for tok, p := range idx.fieldBySig {
		check("field["+tok+"]", p)
	}
}
