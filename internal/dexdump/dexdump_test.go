package dexdump

import (
	"strings"
	"testing"

	"backdroid/internal/dex"
)

func sampleFile(t *testing.T) *dex.File {
	t.Helper()
	f := dex.NewFile()

	server := dex.NewClass("com.connectsdk.service.netcast.NetcastHttpServer")
	server.Method("start", dex.Void).ReturnVoid().Done()
	if err := f.AddClass(server.Build()); err != nil {
		t.Fatal(err)
	}

	runner := dex.NewClass("com.connectsdk.service.NetcastTVService$1").
		Implements("java.lang.Runnable")
	run := runner.Method("run", dex.Void)
	srv := run.Reg()
	startRef := dex.NewMethodRef("com.connectsdk.service.netcast.NetcastHttpServer", "start", dex.Void)
	objInit := dex.NewMethodRef("java.lang.Object", "<init>", dex.Void)
	run.New(srv, "com.connectsdk.service.netcast.NetcastHttpServer").
		InvokeDirect(objInit, srv).
		InvokeVirtual(startRef, srv).
		ReturnVoid().Done()
	if err := f.AddClass(runner.Build()); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDisassembleLayout(t *testing.T) {
	txt := Disassemble(sampleFile(t))
	s := txt.String()

	wantFragments := []string{
		"Class descriptor  : 'Lcom/connectsdk/service/netcast/NetcastHttpServer;'",
		"Superclass        : 'Ljava/lang/Object;'",
		"#0              : 'Ljava/lang/Runnable;'",
		"(in Lcom/connectsdk/service/NetcastTVService$1;)",
		"name          : 'run'",
		"type          : '()V'",
		"invoke-virtual {v1}, Lcom/connectsdk/service/netcast/NetcastHttpServer;.start:()V",
		"new-instance v1, Lcom/connectsdk/service/netcast/NetcastHttpServer;",
	}
	for _, frag := range wantFragments {
		if !strings.Contains(s, frag) {
			t.Errorf("dump missing fragment %q", frag)
		}
	}
}

func TestMethodAtMapsInstructionLines(t *testing.T) {
	txt := Disassemble(sampleFile(t))
	// Find the invoke-virtual start line and confirm its containing method
	// is NetcastTVService$1.run() — the paper's step 2 of Fig. 3.
	found := false
	for i, line := range txt.Lines() {
		if strings.Contains(line, ";.start:()V") && strings.Contains(line, "invoke-virtual") {
			m, ok := txt.MethodAt(i)
			if !ok {
				t.Fatal("instruction line has no containing method")
			}
			want := "<com.connectsdk.service.NetcastTVService$1: void run()>"
			if m.SootSignature() != want {
				t.Errorf("containing method = %s, want %s", m.SootSignature(), want)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("invoke-virtual start line not found in dump")
	}
}

func TestMethodAtHeaderLines(t *testing.T) {
	txt := Disassemble(sampleFile(t))
	if _, ok := txt.MethodAt(0); ok {
		t.Error("class header line must not map to a method")
	}
	if _, ok := txt.MethodAt(-1); ok {
		t.Error("negative line must not map")
	}
	if _, ok := txt.MethodAt(txt.LineCount() + 5); ok {
		t.Error("out-of-range line must not map")
	}
}

func TestMethodsListed(t *testing.T) {
	txt := Disassemble(sampleFile(t))
	if len(txt.Methods()) != 2 {
		t.Fatalf("methods = %d, want 2", len(txt.Methods()))
	}
	sigs := map[string]bool{}
	for _, m := range txt.Methods() {
		sigs[m.DexSignature()] = true
	}
	if !sigs["Lcom/connectsdk/service/netcast/NetcastHttpServer;.start:()V"] {
		t.Error("start method missing from dump method list")
	}
}

func TestAbstractMethodsHaveNoCode(t *testing.T) {
	f := dex.NewFile()
	iface := dex.NewInterface("com.example.Task").AbstractMethod("exec", dex.Void)
	if err := f.AddClass(iface.Build()); err != nil {
		t.Fatal(err)
	}
	txt := Disassemble(f)
	if strings.Contains(txt.String(), "insns size") {
		t.Error("abstract methods must not emit code sections")
	}
	if !strings.Contains(txt.String(), "name          : 'exec'") {
		t.Error("abstract method header missing")
	}
}
