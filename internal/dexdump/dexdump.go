// Package dexdump disassembles a dex file into the plaintext that
// BackDroid's on-the-fly bytecode search greps. The layout mirrors the real
// dexdump output shown in the paper's Fig. 3: per-class headers, per-method
// "name:"/"type:" headers with an "(in Lcls;)" marker, and one
// "|NNNN: mnemonic operands" line per instruction.
package dexdump

import (
	"fmt"
	"strings"

	"backdroid/internal/dex"
)

// Text is the disassembled dump of one (merged) dex file. It retains the
// mapping from each text line back to the containing method so the search
// engine can perform the paper's "identify method in bytecode text" step.
type Text struct {
	lines        []string
	methodOfLine []int // index into methods, -1 for non-instruction lines
	methods      []dex.MethodRef
	spans        []ClassSpan
	full         string
}

// ClassSpan is the contiguous line range one class occupies in the dump.
// Spans tile [0, LineCount()) in class order; they are the atomic unit the
// sharded index partitions (a class never straddles two shards).
type ClassSpan struct {
	Name  string // dotted class name, e.g. "com.lge.app1.Main"
	Start int    // first dump line of the class block
	End   int    // one past the last dump line of the class block
}

// Disassemble renders the dex file as searchable plaintext.
func Disassemble(f *dex.File) *Text {
	t := &Text{}
	var b strings.Builder

	emit := func(methodIdx int, format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		t.lines = append(t.lines, line)
		t.methodOfLine = append(t.methodOfLine, methodIdx)
		b.WriteString(line)
		b.WriteByte('\n')
	}

	for ci, c := range f.Classes() {
		span := ClassSpan{Name: c.Name, Start: len(t.lines)}
		emit(-1, "Class #%d            -", ci)
		emit(-1, "  Class descriptor  : '%s'", dex.T(c.Name))
		emit(-1, "  Access flags      : %s", c.Flags)
		super := ""
		if c.Super != "" {
			super = string(dex.T(c.Super))
		}
		emit(-1, "  Superclass        : '%s'", super)
		emit(-1, "  Interfaces        -")
		for ii, iface := range c.Interfaces {
			emit(-1, "    #%d              : '%s'", ii, dex.T(iface))
		}

		emitMethods := func(header string, methods []*dex.Method) {
			emit(-1, "  %s   -", header)
			for mi, m := range methods {
				midx := len(t.methods)
				t.methods = append(t.methods, m.Ref)
				emit(-1, "    #%d              : (in %s)", mi, dex.T(c.Name))
				emit(midx, "      name          : '%s'", m.Ref.Name)
				emit(midx, "      type          : '%s'", m.Ref.Descriptor())
				emit(midx, "      access        : %s", m.Flags)
				if m.IsAbstract() {
					continue
				}
				emit(midx, "      insns size    : %d 16-bit code units", len(m.Code))
				for pc := range m.Code {
					emit(midx, "        |%04x: %s", pc, m.Code[pc].Format())
				}
			}
		}
		emitMethods("Direct methods ", c.DirectMethods())
		emitMethods("Virtual methods", c.VirtualMethods())
		span.End = len(t.lines)
		t.spans = append(t.spans, span)
	}

	t.full = b.String()
	return t
}

// String returns the full dump text.
func (t *Text) String() string { return t.full }

// Lines returns the dump lines. The slice must not be modified.
func (t *Text) Lines() []string { return t.lines }

// LineCount returns the number of dump lines.
func (t *Text) LineCount() int { return len(t.lines) }

// MethodAt returns the method containing the given dump line, if any.
func (t *Text) MethodAt(line int) (dex.MethodRef, bool) {
	if line < 0 || line >= len(t.methodOfLine) || t.methodOfLine[line] < 0 {
		return dex.MethodRef{}, false
	}
	return t.methods[t.methodOfLine[line]], true
}

// Methods returns every method that appears in the dump, in dump order.
func (t *Text) Methods() []dex.MethodRef { return t.methods }

// ClassSpans returns the per-class line ranges in dump order. The spans
// tile [0, LineCount()). The slice must not be modified.
func (t *Text) ClassSpans() []ClassSpan { return t.spans }
