package dexdump

import (
	"hash/fnv"
	"strings"

	"backdroid/internal/pool"
)

// ShardPlan assigns every class block of a dump to one index shard. Shards
// are the unit of parallel index construction and of cache-friendly
// postings for huge apps: modern apps ship many classesN.dex files, so the
// natural plan gives each source dex its own shard, and single-dex dumps
// fall back to deterministic package-prefix shards. Class spans are atomic
// — a class never straddles shards — so per-shard postings stay ascending
// and lazy lookup merges are linear.
type ShardPlan struct {
	// Kind names the plan flavor for reports: "per-dex", "package" or
	// "single".
	Kind string

	shards     int
	assign     []int // span index -> shard
	shardLines []int // dump lines tokenized per shard
}

// Shards returns the shard count of the plan (at least 1).
func (p *ShardPlan) Shards() int { return p.shards }

// ShardLines returns the dump lines each shard tokenizes. The slice must
// not be modified.
func (p *ShardPlan) ShardLines() []int { return p.shardLines }

// MaxShardLines returns the largest per-shard line count — the critical
// path of a fully parallel shard build, which is what the simulated-time
// model charges.
func (p *ShardPlan) MaxShardLines() int {
	max := 0
	for _, n := range p.shardLines {
		if n > max {
			max = n
		}
	}
	return max
}

func newPlan(t *Text, kind string, shards int, assign []int) *ShardPlan {
	if shards < 1 {
		shards = 1
	}
	p := &ShardPlan{Kind: kind, shards: shards, assign: assign, shardLines: make([]int, shards)}
	for i, sp := range t.spans {
		p.shardLines[assign[i]] += sp.End - sp.Start
	}
	return p
}

// SingleShardPlan places every class in one shard — the degenerate plan
// that makes the sharded machinery coincide with the single merged index.
func SingleShardPlan(t *Text) *ShardPlan {
	return newPlan(t, "single", 1, make([]int, len(t.spans)))
}

// PerDexPlan shards the dump along its classesN.dex provenance:
// classCounts[k] is the number of classes dex k contributed to the merged
// dump (multidex merge preserves class order, so each dex is a contiguous
// run of class spans). Counts that do not tile the dump fall back to a
// single shard rather than mis-attributing classes.
func PerDexPlan(t *Text, classCounts []int) *ShardPlan {
	total := 0
	for _, c := range classCounts {
		total += c
	}
	if len(classCounts) == 0 || total != len(t.spans) {
		return SingleShardPlan(t)
	}
	assign := make([]int, len(t.spans))
	span, shard := 0, 0
	for _, c := range classCounts {
		for i := 0; i < c; i++ {
			assign[span] = shard
			span++
		}
		shard++
	}
	return newPlan(t, "per-dex", len(classCounts), assign)
}

// PackagePrefixPlan shards the dump by hashing each class's leading
// package segments (e.g. "com.lge" of "com.lge.app1.Main") into the given
// number of shards. Classes of one sub-package land in the same shard, so
// postings for package-local queries stay shard-local. The hash is FNV-1a
// — deterministic across runs and machines.
func PackagePrefixPlan(t *Text, shards int) *ShardPlan {
	if shards < 1 {
		shards = 1
	}
	assign := make([]int, len(t.spans))
	for i, sp := range t.spans {
		h := fnv.New32a()
		h.Write([]byte(packagePrefix(sp.Name)))
		assign[i] = int(h.Sum32() % uint32(shards))
	}
	return newPlan(t, "package", shards, assign)
}

// packagePrefix extracts the first two dotted segments of a class name.
func packagePrefix(name string) string {
	first := strings.IndexByte(name, '.')
	if first < 0 {
		return name
	}
	second := strings.IndexByte(name[first+1:], '.')
	if second < 0 {
		return name
	}
	return name[:first+1+second]
}

// ShardedIndex is a set of per-shard inverted indexes over one dump text.
// Postings store global dump line numbers, so shard lookups need no
// translation; the per-token lists of distinct shards are disjoint and
// ascending, and lookups merge them lazily — only the queried token pays
// the merge, never the whole index. A ShardedIndex is immutable after
// construction and safe for concurrent readers.
type ShardedIndex struct {
	shards []*Index
	lines  int
}

// BuildShardedIndex tokenizes the dump into per-shard indexes, building
// shards concurrently on a bounded worker pool (workers <= 1 builds
// sequentially). The result is identical for any worker count: each shard
// tokenizes a disjoint set of class spans in ascending span order.
func BuildShardedIndex(t *Text, plan *ShardPlan, workers int) *ShardedIndex {
	spansOf := make([][]ClassSpan, plan.shards)
	for i, sp := range t.spans {
		s := plan.assign[i]
		spansOf[s] = append(spansOf[s], sp)
	}
	shards := make([]*Index, plan.shards)
	pool.ForEach(plan.shards, workers, func(s int) error {
		idx := newIndex(0)
		for _, sp := range spansOf[s] {
			for i := sp.Start; i < sp.End; i++ {
				idx.addLine(int32(i), t.lines[i])
			}
			idx.lines += sp.End - sp.Start
		}
		shards[s] = idx
		return nil
	})
	return &ShardedIndex{shards: shards, lines: len(t.lines)}
}

// lookup merges one postings list per shard, lazily at query time — the
// sequential twin of LookupShards + MergeShardLists, sharing the merge so
// the two paths cannot diverge.
func (x *ShardedIndex) lookup(get func(*Index) []int32) []int32 {
	lists := make([][]int32, len(x.shards))
	for i, sh := range x.shards {
		lists[i] = get(sh)
	}
	return MergeShardLists(lists)
}

// LookupShards fetches one postings list per shard, fanning the per-shard
// fetches out over a bounded worker pool (workers <= 1 fetches
// sequentially). The lists come back indexed by shard — the same order the
// sequential lazy lookup visits — so MergeShardLists over the result is
// bitwise identical to lookup() for any worker count. This is the
// wall-clock half of the parallel-lookup fast path; the caller charges the
// simulated-time model (max per-shard list + merge critical path).
func (x *ShardedIndex) LookupShards(get func(*Index) []int32, workers int) [][]int32 {
	lists := make([][]int32, len(x.shards))
	pool.ForEach(len(x.shards), workers, func(s int) error {
		lists[s] = get(x.shards[s])
		return nil
	})
	return lists
}

// MergeShardLists merges per-shard postings lists (ascending,
// duplicate-free, disjoint across shards) into one ascending list in shard
// order — deterministically, regardless of how the lists were fetched.
func MergeShardLists(lists [][]int32) []int32 {
	var merged []int32
	first := true
	for _, p := range lists {
		if len(p) == 0 {
			continue
		}
		if first {
			merged, first = p, false
			continue
		}
		merged = mergePostings(merged, p)
	}
	return merged
}

// InvokeBySig merges the shards' invoke postings for the exact signature.
func (x *ShardedIndex) InvokeBySig(sig string) []int32 {
	return x.lookup(func(i *Index) []int32 { return i.InvokeBySig(sig) })
}

// InvokeByName merges the shards' ".name:descriptor" postings.
func (x *ShardedIndex) InvokeByName(needle string) []int32 {
	return x.lookup(func(i *Index) []int32 { return i.InvokeByName(needle) })
}

// InvokeByNamePrefix merges the shards' ".name:" prefix postings.
func (x *ShardedIndex) InvokeByNamePrefix(prefix string) []int32 {
	return x.lookup(func(i *Index) []int32 { return i.InvokeByNamePrefix(prefix) })
}

// CtorByPrefix merges the shards' constructor-call postings.
func (x *ShardedIndex) CtorByPrefix(prefix string) []int32 {
	return x.lookup(func(i *Index) []int32 { return i.CtorByPrefix(prefix) })
}

// NewInstance merges the shards' new-instance postings.
func (x *ShardedIndex) NewInstance(desc string) []int32 {
	return x.lookup(func(i *Index) []int32 { return i.NewInstance(desc) })
}

// ConstClass merges the shards' const-class postings.
func (x *ShardedIndex) ConstClass(desc string) []int32 {
	return x.lookup(func(i *Index) []int32 { return i.ConstClass(desc) })
}

// ConstString merges the shards' const-string postings.
func (x *ShardedIndex) ConstString(value string) []int32 {
	return x.lookup(func(i *Index) []int32 { return i.ConstString(value) })
}

// FieldBySig merges the shards' field-access postings.
func (x *ShardedIndex) FieldBySig(sig string) []int32 {
	return x.lookup(func(i *Index) []int32 { return i.FieldBySig(sig) })
}

// ClassUse merges the shards' class-descriptor postings.
func (x *ShardedIndex) ClassUse(desc string) []int32 {
	return x.lookup(func(i *Index) []int32 { return i.ClassUse(desc) })
}

// Lines returns the number of dump lines the sharded index covers.
func (x *ShardedIndex) Lines() int { return x.lines }

// Postings returns the total postings across all shards.
func (x *ShardedIndex) Postings() int {
	n := 0
	for _, sh := range x.shards {
		n += sh.postings
	}
	return n
}

// ShardCount returns the number of shards.
func (x *ShardedIndex) ShardCount() int { return len(x.shards) }

// TokenListLengths returns the per-token total postings-list lengths of
// the sharded index: a lookup for one token visits its list in every
// shard, so the per-shard lengths of one (family, token) pair are summed.
func (x *ShardedIndex) TokenListLengths() []int {
	if len(x.shards) == 0 {
		return nil
	}
	// Family maps are in the fixed codec order on every shard, so the
	// family index disambiguates colliding key strings across maps.
	totals := make(map[string]int)
	for _, sh := range x.shards {
		for fi, m := range sh.maps() {
			for token, p := range *m {
				totals[string(rune('0'+fi))+token] += len(p)
			}
		}
	}
	out := make([]int, 0, len(totals))
	for _, n := range totals {
		out = append(out, n)
	}
	return out
}

// Shard returns shard i (for the codec and tests).
func (x *ShardedIndex) Shard(i int) *Index { return x.shards[i] }
