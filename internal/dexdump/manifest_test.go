package dexdump

import (
	"bytes"
	"testing"

	"backdroid/internal/dex"
)

// buildFixtureFile assembles a dex file from named classes in order; each
// class body depends only on the class name, so the same name produces
// the same body at any position.
func buildFixtureFile(t *testing.T, names ...string) (*dex.File, *Text) {
	t.Helper()
	f := dex.NewFile()
	objInit := dex.NewMethodRef("java.lang.Object", "<init>", dex.Void)
	for _, name := range names {
		c := dex.NewClass(name)
		ctor := c.Constructor()
		ctor.InvokeDirect(objInit, ctor.This()).ReturnVoid().Done()
		m := c.Method("work", dex.Void)
		m.ConstString(m.Reg(), "payload-"+name).ReturnVoid().Done()
		if err := f.AddClass(c.Build()); err != nil {
			t.Fatal(err)
		}
	}
	return f, Disassemble(f)
}

// TestSpanFingerprintPositionIndependent pins the content-addressing
// property everything above relies on: a class body fingerprints
// identically no matter where it sits in the dump (the "Class #N" header
// line embeds the position and must be excluded from the hash).
func TestSpanFingerprintPositionIndependent(t *testing.T) {
	_, a := buildFixtureFile(t, "com.x.Keep", "com.x.Other")
	_, b := buildFixtureFile(t, "com.x.First", "com.x.Second", "com.x.Keep")

	spA, ok := a.SpanOf("com.x.Keep")
	if !ok {
		t.Fatal("com.x.Keep missing from dump A")
	}
	spB, ok := b.SpanOf("com.x.Keep")
	if !ok {
		t.Fatal("com.x.Keep missing from dump B")
	}
	if spA.Start == spB.Start {
		t.Fatal("fixture broken: class sits at the same position in both dumps")
	}
	if SpanFingerprint(a, spA) != SpanFingerprint(b, spB) {
		t.Error("identical class body fingerprints differently at different positions")
	}
	other, _ := a.SpanOf("com.x.Other")
	if SpanFingerprint(a, spA) == SpanFingerprint(a, other) {
		t.Error("different class bodies share a fingerprint")
	}
}

// TestManifestRoundtrip pins the codec: the manifest encoded into a v3
// bundle decodes identically, with the plan's shard assignment intact.
func TestManifestRoundtrip(t *testing.T) {
	_, text := shardFixture(t)
	plan := PackagePrefixPlan(text, 3)
	idx := BuildShardedIndex(text, plan, 1)
	data, err := EncodeBundle(text, idx, testFingerprint, plan)
	if err != nil {
		t.Fatal(err)
	}
	want := BuildManifest(text, plan)
	got, ok := DecodeManifest(data)
	if !ok {
		t.Fatal("v3 bundle manifest did not decode")
	}
	if got.Shards != want.Shards || len(got.Entries) != len(want.Entries) {
		t.Fatalf("manifest shape = %d shards / %d entries, want %d / %d",
			got.Shards, len(got.Entries), want.Shards, len(want.Entries))
	}
	for i := range want.Entries {
		if got.Entries[i] != want.Entries[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got.Entries[i], want.Entries[i])
		}
	}
}

// TestManifestAbsentFromLegacyBundles pins the compatibility contract: a
// pre-manifest bundle yields ok=false — the delta engine then silently
// performs a full analysis — while its index still serves.
func TestManifestAbsentFromLegacyBundles(t *testing.T) {
	_, text := shardFixture(t)
	idx := BuildShardedIndex(text, PackagePrefixPlan(text, 2), 1)
	legacy := encodeLegacyIndexFile(t, text, idx)
	if _, ok := DecodeManifest(legacy); ok {
		t.Error("v1 index-only file claims a manifest")
	}
	if _, _, ok := ShardPayloads(legacy); ok {
		t.Error("v1 index-only file yields shard payloads")
	}
	if _, err := DecodeIndexFile(legacy, text); err != nil {
		t.Errorf("legacy index no longer decodes: %v", err)
	}
}

// TestShardFingerprintsDedupAcrossVersions pins the cross-version
// property of the shard store key: two versions differing in one class
// share every shard fingerprint except the changed class's shard.
func TestShardFingerprintsDedupAcrossVersions(t *testing.T) {
	_, v1 := buildFixtureFile(t, "com.a.One", "com.a.Two", "com.b.Three", "com.b.Four")
	f2 := dex.NewFile()
	objInit := dex.NewMethodRef("java.lang.Object", "<init>", dex.Void)
	for _, name := range []string{"com.a.One", "com.a.Two", "com.b.Three", "com.b.Four"} {
		c := dex.NewClass(name)
		ctor := c.Constructor()
		ctor.InvokeDirect(objInit, ctor.This()).ReturnVoid().Done()
		m := c.Method("work", dex.Void)
		payload := "payload-" + name
		if name == "com.b.Four" {
			payload = "patched-" + name // the update's one changed class
		}
		m.ConstString(m.Reg(), payload).ReturnVoid().Done()
		if err := f2.AddClass(c.Build()); err != nil {
			t.Fatal(err)
		}
	}
	v2 := Disassemble(f2)

	planOf := func(t2 *Text) *ShardPlan { return PackagePrefixPlan(t2, 2) }
	m1 := BuildManifest(v1, planOf(v1))
	m2 := BuildManifest(v2, planOf(v2))
	fp1, fp2 := m1.ShardFingerprints(), m2.ShardFingerprints()
	if len(fp1) != 2 || len(fp2) != 2 {
		t.Fatalf("shard counts = %d / %d, want 2 / 2", len(fp1), len(fp2))
	}
	shared, distinct := 0, 0
	seen := map[uint64]bool{}
	for _, fp := range fp1 {
		seen[fp] = true
	}
	for _, fp := range fp2 {
		if seen[fp] {
			shared++
		} else {
			distinct++
		}
	}
	if shared != 1 || distinct != 1 {
		t.Errorf("shared/distinct shards = %d/%d, want 1/1 (only com.b's shard changed)", shared, distinct)
	}

	d := DiffManifests(m1, m2)
	if len(d.Changed) != 1 || d.Changed[0] != "com.b.Four" || d.Unchanged != 3 {
		t.Errorf("diff = %+v, want exactly com.b.Four changed", d)
	}
	if d.ShardsUnchanged != 1 || d.ShardsChanged != 1 {
		t.Errorf("shard diff = %d unchanged / %d changed, want 1/1", d.ShardsUnchanged, d.ShardsChanged)
	}
}

// TestShardPayloadsMatchEncodedShards pins that the payload split is the
// exact byte ranges the decoder consumes: stitching the payloads back
// together reproduces the bundle's index payload.
func TestShardPayloadsMatchEncodedShards(t *testing.T) {
	_, text := shardFixture(t)
	plan := PackagePrefixPlan(text, 3)
	idx := BuildShardedIndex(text, plan, 1)
	data, err := EncodeBundle(text, idx, testFingerprint, plan)
	if err != nil {
		t.Fatal(err)
	}
	fps, payloads, ok := ShardPayloads(data)
	if !ok {
		t.Fatal("shard payload split failed on a pristine bundle")
	}
	if len(fps) != plan.Shards() || len(payloads) != plan.Shards() {
		t.Fatalf("split = %d fps / %d payloads, want %d", len(fps), len(payloads), plan.Shards())
	}
	want, err := indexSection(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Join(payloads, nil); !bytes.Equal(got, want) {
		t.Error("stitched shard payloads differ from the index section")
	}
}

// TestBuildPartialIndexGlobalLines pins the replay-probe contract: a
// partial index over a subset of classes returns hits with the full
// dump's line numbers.
func TestBuildPartialIndexGlobalLines(t *testing.T) {
	_, text := buildFixtureFile(t, "com.a.One", "com.a.Two", "com.b.Three")
	partial := BuildPartialIndex(text, map[string]bool{"com.b.Three": true})
	full := BuildIndex(text)

	want := full.ConstString("payload-com.b.Three")
	got := partial.ConstString("payload-com.b.Three")
	if len(want) == 0 {
		t.Fatal("fixture literal not indexed by the full index")
	}
	if !equalPostings(got, want) {
		t.Errorf("partial postings = %v, want the full index's global lines %v", got, want)
	}
	sp, _ := text.SpanOf("com.b.Three")
	for _, n := range got {
		if int(n) < sp.Start || int(n) >= sp.End {
			t.Errorf("line %d outside the class span [%d,%d)", n, sp.Start, sp.End)
		}
	}
	// Spans outside the subset contribute nothing.
	if lines := partial.ConstString("payload-com.a.One"); len(lines) != 0 {
		t.Errorf("partial index indexed an excluded class: %v", lines)
	}
}
