package dexdump

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"backdroid/internal/dex"
)

// testFingerprint is the stand-in app fingerprint of the codec tests; any
// non-zero value works since encode and probe agree on it.
const testFingerprint uint64 = 0xfeedface

func roundtrip(t *testing.T, text *Text, src Source) Source {
	t.Helper()
	data, err := EncodeBundle(text, src, testFingerprint, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeIndexFile(data, text)
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

func assertSameLookups(t *testing.T, want, got Source, label string) {
	t.Helper()
	w, g := lookups(want), lookups(got)
	for name := range w {
		if !equalPostings(g[name], w[name]) {
			t.Errorf("%s: %s postings = %v, want %v", label, name, g[name], w[name])
		}
	}
	if got.Postings() != want.Postings() {
		t.Errorf("%s: postings count = %d, want %d", label, got.Postings(), want.Postings())
	}
	if got.ShardCount() != want.ShardCount() {
		t.Errorf("%s: shard count = %d, want %d", label, got.ShardCount(), want.ShardCount())
	}
}

// assertSameText checks a decoded dump reproduces the original Text
// exactly: lines, method attribution, class spans.
func assertSameText(t *testing.T, want, got *Text) {
	t.Helper()
	if got.String() != want.String() {
		t.Fatal("decoded dump text differs from original")
	}
	if got.LineCount() != want.LineCount() {
		t.Fatalf("decoded dump has %d lines, want %d", got.LineCount(), want.LineCount())
	}
	for i := 0; i < want.LineCount(); i++ {
		wm, wok := want.MethodAt(i)
		gm, gok := got.MethodAt(i)
		if wok != gok || (wok && wm.SootSignature() != gm.SootSignature()) {
			t.Fatalf("line %d method attribution differs: %v/%v vs %v/%v", i, wm, wok, gm, gok)
		}
	}
	ws, gs := want.ClassSpans(), got.ClassSpans()
	if len(ws) != len(gs) {
		t.Fatalf("decoded dump has %d spans, want %d", len(gs), len(ws))
	}
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("span %d = %+v, want %+v", i, gs[i], ws[i])
		}
	}
}

func TestCodecRoundtripSingleIndex(t *testing.T) {
	_, text := shardFixture(t)
	idx := BuildIndex(text)
	dec := roundtrip(t, text, idx)
	if _, ok := dec.(*Index); !ok {
		t.Fatalf("one-shard file decoded to %T, want *Index", dec)
	}
	assertSameLookups(t, idx, dec, "single")
}

func TestCodecRoundtripShardedIndex(t *testing.T) {
	_, text := shardFixture(t)
	sharded := BuildShardedIndex(text, PackagePrefixPlan(text, 3), 2)
	dec := roundtrip(t, text, sharded)
	if _, ok := dec.(*ShardedIndex); !ok {
		t.Fatalf("multi-shard file decoded to %T, want *ShardedIndex", dec)
	}
	assertSameLookups(t, sharded, dec, "sharded")
}

func TestCodecRoundtripDumpSection(t *testing.T) {
	_, text := shardFixture(t)
	data, err := EncodeBundle(text, BuildIndex(text), testFingerprint, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBundleDump(data, testFingerprint)
	if err != nil {
		t.Fatal(err)
	}
	assertSameText(t, text, dec)

	// The decoded dump is a full substitute: the index section validates
	// against it just as against the original.
	idx, err := DecodeIndexFile(data, dec)
	if err != nil {
		t.Fatalf("index section rejected the decoded dump: %v", err)
	}
	assertSameLookups(t, BuildIndex(text), idx, "via decoded dump")
}

func TestCodecDumpSectionFingerprint(t *testing.T) {
	_, text := shardFixture(t)
	data, err := EncodeBundle(text, BuildIndex(text), testFingerprint, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBundleDump(data, testFingerprint+1); err == nil {
		t.Error("dump section decoded for a different app fingerprint")
	}
	if _, err := DecodeBundleDump(data, 0); err == nil {
		t.Error("dump section decoded without a fingerprint to validate against")
	}
	// A bundle written without a fingerprint can never validate its dump.
	anon, err := EncodeBundle(text, BuildIndex(text), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBundleDump(anon, testFingerprint); err == nil {
		t.Error("fingerprint-less bundle validated a dump probe")
	}
}

func TestCodecDeterministicBytes(t *testing.T) {
	_, text := shardFixture(t)
	sharded := BuildShardedIndex(text, PackagePrefixPlan(text, 3), 2)
	a, err := EncodeBundle(text, sharded, testFingerprint, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeBundle(text, sharded, testFingerprint, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("encoding the same bundle twice produced different bytes")
	}
}

func TestAppFingerprintDeterministicAndSensitive(t *testing.T) {
	f1, _ := shardFixture(t)
	f2, _ := shardFixture(t)
	if AppFingerprint([]*dex.File{f1}) != AppFingerprint([]*dex.File{f2}) {
		t.Error("identical apps fingerprint differently")
	}
	other := sampleFile(t)
	if AppFingerprint([]*dex.File{f1}) == AppFingerprint([]*dex.File{other}) {
		t.Error("different apps share a fingerprint")
	}
	if AppFingerprint(nil) == 0 {
		t.Error("fingerprint 0 is reserved for unknown")
	}
}

// indexPayloadBounds returns the [start,end) byte range of the index
// payload in a v2 bundle.
func indexPayloadBounds(data []byte) (int, int) {
	n := int(binary.LittleEndian.Uint32(data[24:28]))
	return codecHeaderSize, codecHeaderSize + n
}

func TestCodecRejectsInvalidIndexSections(t *testing.T) {
	_, text := shardFixture(t)
	idx := BuildIndex(text)
	good, err := EncodeBundle(text, idx, testFingerprint, nil)
	if err != nil {
		t.Fatal(err)
	}
	ipStart, ipEnd := indexPayloadBounds(good)

	corrupt := func(mutate func([]byte) []byte) []byte {
		data := append([]byte(nil), good...)
		return mutate(data)
	}
	cases := map[string][]byte{
		"empty":                   {},
		"truncated header":        good[:10],
		"truncated index payload": good[:ipStart+(ipEnd-ipStart)/2],
		"bad magic":               corrupt(func(d []byte) []byte { d[0] = 'X'; return d }),
		"version bump": corrupt(func(d []byte) []byte {
			binary.LittleEndian.PutUint16(d[4:6], CodecVersion+1)
			return d
		}),
		"stale hash": corrupt(func(d []byte) []byte { d[9] ^= 0xff; return d }),
		"index payload bit flip": corrupt(func(d []byte) []byte {
			d[ipEnd-1] ^= 0x01
			return d
		}),
		"index length overflow": corrupt(func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[24:28], uint32(len(d)))
			return d
		}),
	}
	for name, data := range cases {
		if _, err := DecodeIndexFile(data, text); err == nil {
			t.Errorf("%s: index decode succeeded, want error", name)
		}
		// The dump section is validated independently; it may survive
		// index-side damage, but never yield a different text.
		if dump, err := DecodeBundleDump(data, testFingerprint); err == nil && dump.String() != text.String() {
			t.Errorf("%s: dump decode succeeded with different text", name)
		}
	}
}

func TestCodecDumpCorruptionIsolatedFromIndex(t *testing.T) {
	// A bundle whose dump section is damaged must still serve its index
	// section (the engine falls back to disassembly and self-heals the
	// file), and vice versa a damaged index section must not poison the
	// dump probe.
	_, text := shardFixture(t)
	idx := BuildIndex(text)
	good, err := EncodeBundle(text, idx, testFingerprint, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, ipEnd := indexPayloadBounds(good)

	dumpFlip := append([]byte(nil), good...)
	dumpFlip[ipEnd+dumpSectionHeaderSize] ^= 0x01 // first dump payload byte
	if _, err := DecodeBundleDump(dumpFlip, testFingerprint); err == nil {
		t.Error("corrupt dump payload validated")
	}
	dec, err := DecodeIndexFile(dumpFlip, text)
	if err != nil {
		t.Fatalf("dump corruption broke the index section: %v", err)
	}
	assertSameLookups(t, idx, dec, "dump-flip")

	indexFlip := append([]byte(nil), good...)
	indexFlip[ipEnd-1] ^= 0x01
	if _, err := DecodeIndexFile(indexFlip, text); err == nil {
		t.Error("corrupt index payload validated")
	}
	dump, err := DecodeBundleDump(indexFlip, testFingerprint)
	if err != nil {
		t.Fatalf("index corruption broke the dump section: %v", err)
	}
	assertSameText(t, text, dump)
}

// TestCodecBundleCorruptionFuzz flips every byte of a valid bundle (and
// truncates at every section boundary) and asserts the silent-miss
// discipline: each decode either errors or returns data identical to the
// pristine decode — never a panic, never a wrong hit. Single-byte flips
// are always caught by the section CRCs / hashes except in fields a given
// section legitimately ignores, so equality on success is the invariant.
func TestCodecBundleCorruptionFuzz(t *testing.T) {
	_, text := shardFixture(t)
	plan := PackagePrefixPlan(text, 2)
	idx := BuildShardedIndex(text, plan, 1)
	good, err := EncodeBundle(text, idx, testFingerprint, plan)
	if err != nil {
		t.Fatal(err)
	}
	wantIdx := lookups(idx)
	wantMan, ok := DecodeManifest(good)
	if !ok {
		t.Fatal("pristine bundle has no decodable manifest")
	}
	wantFPs, wantPayloads, ok := ShardPayloads(good)
	if !ok {
		t.Fatal("pristine bundle yields no shard payloads")
	}

	check := func(name string, data []byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: decode panicked: %v", name, r)
			}
		}()
		if src, err := DecodeIndexFile(data, text); err == nil {
			got := lookups(src)
			for k := range wantIdx {
				if !equalPostings(got[k], wantIdx[k]) {
					t.Fatalf("%s: index decoded successfully but %s postings differ", name, k)
				}
			}
		}
		if dump, err := DecodeBundleDump(data, testFingerprint); err == nil {
			if dump.String() != text.String() {
				t.Fatalf("%s: dump decoded successfully but text differs", name)
			}
		}
		// The manifest section obeys the same discipline: decode fails
		// (the delta engine then silently runs full) or is identical.
		if m, mok := DecodeManifest(data); mok {
			if len(m.Entries) != len(wantMan.Entries) || m.Shards != wantMan.Shards {
				t.Fatalf("%s: manifest decoded successfully but shape differs", name)
			}
			for i := range m.Entries {
				if m.Entries[i] != wantMan.Entries[i] {
					t.Fatalf("%s: manifest entry %d differs: %+v vs %+v", name, i, m.Entries[i], wantMan.Entries[i])
				}
			}
		}
		if fps, payloads, pok := ShardPayloads(data); pok {
			if len(fps) != len(wantFPs) {
				t.Fatalf("%s: shard payload count differs", name)
			}
			for i := range fps {
				if fps[i] != wantFPs[i] || !bytes.Equal(payloads[i], wantPayloads[i]) {
					t.Fatalf("%s: shard payload %d differs", name, i)
				}
			}
		}
	}

	// Every single-byte flip across the whole file: header, index payload,
	// dump section header, dump payload — all section boundaries included.
	for off := 0; off < len(good); off++ {
		data := append([]byte(nil), good...)
		data[off] ^= 0xa5
		check("flip", data)
	}
	// Truncation at every boundary and a sweep inside each section.
	_, ipEnd := indexPayloadBounds(good)
	cuts := []int{0, 3, codecHeaderSizeV1, codecHeaderSize, ipEnd - 1, ipEnd,
		ipEnd + 7, ipEnd + dumpSectionHeaderSize, len(good) - 1}
	for _, cut := range cuts {
		if cut < 0 || cut > len(good) {
			continue
		}
		check("truncate", good[:cut])
	}
	// Trailing garbage.
	check("trailing", append(append([]byte(nil), good...), 0xAB))
}

// encodeLegacyIndexFile reproduces the PR 2 (version 1) index-only layout:
// 24-byte header, index payload to EOF, no dump section.
func encodeLegacyIndexFile(t *testing.T, text *Text, src Source) []byte {
	t.Helper()
	shards, err := shardsOf(src)
	if err != nil {
		t.Fatal(err)
	}
	var payload []byte
	for _, sh := range shards {
		payload = appendShard(payload, sh)
	}
	buf := make([]byte, codecHeaderSizeV1, codecHeaderSizeV1+len(payload))
	copy(buf[0:4], codecMagic)
	binary.LittleEndian.PutUint16(buf[4:6], codecVersionIndexOnly)
	binary.LittleEndian.PutUint16(buf[6:8], uint16(len(shards)))
	binary.LittleEndian.PutUint64(buf[8:16], DumpHash(text))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(text.LineCount()))
	binary.LittleEndian.PutUint32(buf[20:24], crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// TestCodecMixedVersion pins forward compatibility: an old index-only file
// still serves its index section under the new decoder (upgrading the
// binary never cold-starts existing caches), while its absent dump section
// is a clean miss, and corrupting the legacy payload is still rejected.
func TestCodecMixedVersion(t *testing.T) {
	_, text := shardFixture(t)
	sharded := BuildShardedIndex(text, PackagePrefixPlan(text, 3), 1)
	legacy := encodeLegacyIndexFile(t, text, sharded)

	dec, err := DecodeIndexFile(legacy, text)
	if err != nil {
		t.Fatalf("new decoder rejected a valid v1 index file: %v", err)
	}
	assertSameLookups(t, sharded, dec, "legacy")

	if _, err := DecodeBundleDump(legacy, testFingerprint); err == nil {
		t.Error("v1 file has no dump section; probe must miss")
	}

	corrupt := append([]byte(nil), legacy...)
	corrupt[len(corrupt)-1] ^= 0x01
	if _, err := DecodeIndexFile(corrupt, text); err == nil {
		t.Error("corrupt v1 payload accepted")
	}
}

func TestCodecStaleAgainstDifferentDump(t *testing.T) {
	_, text := shardFixture(t)
	idx := BuildIndex(text)
	data, err := EncodeBundle(text, idx, testFingerprint, nil)
	if err != nil {
		t.Fatal(err)
	}
	other := Disassemble(sampleFile(t))
	if _, err := DecodeIndexFile(data, other); err == nil {
		t.Error("cache for one dump decoded against another — hash check missing")
	}
}

func TestWriteLoadBundle(t *testing.T) {
	_, text := shardFixture(t)
	sharded := BuildShardedIndex(text, PackagePrefixPlan(text, 2), 1)
	path := CachePath(filepath.Join(t.TempDir(), "nested"), "com.example.app")
	if err := WriteBundle(path, text, sharded, testFingerprint, nil); err != nil {
		t.Fatal(err)
	}
	dec, err := LoadIndexCache(path, text)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLookups(t, sharded, dec, "file roundtrip")

	dump, err := LoadBundleDump(path, testFingerprint)
	if err != nil {
		t.Fatal(err)
	}
	assertSameText(t, text, dump)

	// No stray temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("cache dir has %d entries, want just the bundle", len(entries))
	}

	if _, err := LoadIndexCache(filepath.Join(t.TempDir(), "missing.bdx"), text); err == nil {
		t.Error("loading a missing bundle must error")
	}
	if _, err := LoadBundleDump(filepath.Join(t.TempDir(), "missing.bdx"), testFingerprint); err == nil {
		t.Error("probing a missing bundle must error")
	}
}

func TestDecodePostingsRejectsMalformedLists(t *testing.T) {
	enc := func(vals ...uint64) []byte {
		var buf []byte
		for _, v := range vals {
			buf = binary.AppendUvarint(buf, v)
		}
		return buf
	}
	const maxLines = 100
	cases := map[string][]byte{
		"line beyond dump":      enc(1, 100),       // first posting == maxLines
		"delta overflow":        enc(2, 50, 1<<40), // would overflow/escape range
		"zero delta (dup line)": enc(2, 5, 0),
		"count beyond dump":     enc(101),
		"sum beyond dump":       enc(3, 60, 30, 30),
	}
	for name, buf := range cases {
		if _, _, err := decodePostings(buf, maxLines); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// A well-formed list still decodes.
	p, rest, err := decodePostings(enc(3, 5, 2, 90), maxLines)
	if err != nil || len(rest) != 0 {
		t.Fatalf("valid list failed: %v (rest %d)", err, len(rest))
	}
	if !equalPostings(p, []int32{5, 7, 97}) {
		t.Errorf("decoded %v, want [5 7 97]", p)
	}
}
