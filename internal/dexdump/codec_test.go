package dexdump

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func roundtrip(t *testing.T, text *Text, src Source) Source {
	t.Helper()
	data, err := EncodeIndexFile(text, src)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeIndexFile(data, text)
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

func assertSameLookups(t *testing.T, want, got Source, label string) {
	t.Helper()
	w, g := lookups(want), lookups(got)
	for name := range w {
		if !equalPostings(g[name], w[name]) {
			t.Errorf("%s: %s postings = %v, want %v", label, name, g[name], w[name])
		}
	}
	if got.Postings() != want.Postings() {
		t.Errorf("%s: postings count = %d, want %d", label, got.Postings(), want.Postings())
	}
	if got.ShardCount() != want.ShardCount() {
		t.Errorf("%s: shard count = %d, want %d", label, got.ShardCount(), want.ShardCount())
	}
}

func TestCodecRoundtripSingleIndex(t *testing.T) {
	_, text := shardFixture(t)
	idx := BuildIndex(text)
	dec := roundtrip(t, text, idx)
	if _, ok := dec.(*Index); !ok {
		t.Fatalf("one-shard file decoded to %T, want *Index", dec)
	}
	assertSameLookups(t, idx, dec, "single")
}

func TestCodecRoundtripShardedIndex(t *testing.T) {
	_, text := shardFixture(t)
	sharded := BuildShardedIndex(text, PackagePrefixPlan(text, 3), 2)
	dec := roundtrip(t, text, sharded)
	if _, ok := dec.(*ShardedIndex); !ok {
		t.Fatalf("multi-shard file decoded to %T, want *ShardedIndex", dec)
	}
	assertSameLookups(t, sharded, dec, "sharded")
}

func TestCodecDeterministicBytes(t *testing.T) {
	_, text := shardFixture(t)
	sharded := BuildShardedIndex(text, PackagePrefixPlan(text, 3), 2)
	a, err := EncodeIndexFile(text, sharded)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeIndexFile(text, sharded)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("encoding the same index twice produced different bytes")
	}
}

func TestCodecRejectsInvalidFiles(t *testing.T) {
	_, text := shardFixture(t)
	idx := BuildIndex(text)
	good, err := EncodeIndexFile(text, idx)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func([]byte) []byte) []byte {
		data := append([]byte(nil), good...)
		return mutate(data)
	}
	cases := map[string][]byte{
		"empty":             {},
		"truncated header":  good[:10],
		"truncated payload": good[:len(good)-7],
		"bad magic":         corrupt(func(d []byte) []byte { d[0] = 'X'; return d }),
		"version bump": corrupt(func(d []byte) []byte {
			binary.LittleEndian.PutUint16(d[4:6], CodecVersion+1)
			return d
		}),
		"stale hash": corrupt(func(d []byte) []byte { d[9] ^= 0xff; return d }),
		"payload bit flip": corrupt(func(d []byte) []byte {
			d[len(d)-1] ^= 0x01
			return d
		}),
		"trailing garbage": append(append([]byte(nil), good...), 0xAB),
	}
	for name, data := range cases {
		if _, err := DecodeIndexFile(data, text); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func TestCodecStaleAgainstDifferentDump(t *testing.T) {
	_, text := shardFixture(t)
	idx := BuildIndex(text)
	data, err := EncodeIndexFile(text, idx)
	if err != nil {
		t.Fatal(err)
	}
	other := Disassemble(sampleFile(t))
	if _, err := DecodeIndexFile(data, other); err == nil {
		t.Error("cache for one dump decoded against another — hash check missing")
	}
}

func TestWriteLoadIndexCache(t *testing.T) {
	_, text := shardFixture(t)
	sharded := BuildShardedIndex(text, PackagePrefixPlan(text, 2), 1)
	path := CachePath(filepath.Join(t.TempDir(), "nested"), "com.example.app")
	if err := WriteIndexCache(path, text, sharded); err != nil {
		t.Fatal(err)
	}
	dec, err := LoadIndexCache(path, text)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLookups(t, sharded, dec, "file roundtrip")

	// No stray temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("cache dir has %d entries, want just the cache file", len(entries))
	}

	if _, err := LoadIndexCache(filepath.Join(t.TempDir(), "missing.bdx"), text); err == nil {
		t.Error("loading a missing cache file must error")
	}
}

func TestDecodePostingsRejectsMalformedLists(t *testing.T) {
	enc := func(vals ...uint64) []byte {
		var buf []byte
		for _, v := range vals {
			buf = binary.AppendUvarint(buf, v)
		}
		return buf
	}
	const maxLines = 100
	cases := map[string][]byte{
		"line beyond dump":      enc(1, 100),       // first posting == maxLines
		"delta overflow":        enc(2, 50, 1<<40), // would overflow/escape range
		"zero delta (dup line)": enc(2, 5, 0),
		"count beyond dump":     enc(101),
		"sum beyond dump":       enc(3, 60, 30, 30),
	}
	for name, buf := range cases {
		if _, _, err := decodePostings(buf, maxLines); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// A well-formed list still decodes.
	p, rest, err := decodePostings(enc(3, 5, 2, 90), maxLines)
	if err != nil || len(rest) != 0 {
		t.Fatalf("valid list failed: %v (rest %d)", err, len(rest))
	}
	if !equalPostings(p, []int32{5, 7, 97}) {
		t.Errorf("decoded %v, want [5 7 97]", p)
	}
}
