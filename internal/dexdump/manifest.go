package dexdump

import (
	"encoding/binary"
	"hash/fnv"
)

// Shard manifest: the content-addressing layer below the whole-app
// fingerprint. Every class span of a dump gets a stable FNV-64a
// fingerprint of its name and body text, and every shard of the plan gets
// a fingerprint folded from its spans' fingerprints in span order. Two
// versions of an app (or two apps embedding the same SDK dex) produce
// identical span fingerprints for identical class bodies, which is what
// the delta engine's manifest diff and the service's cross-app shard
// store key on. See DESIGN.md Sec. 10.

// ManifestEntry describes one class span of the dump.
type ManifestEntry struct {
	Name        string // dotted class name, as in ClassSpan
	Fingerprint uint64 // SpanFingerprint of the class body
	Lines       int    // dump lines of the span
	Shard       int    // shard the plan assigned the span to
}

// Manifest is the per-class content map of one bundle: every class span
// in dump order, plus the shard count of the plan the bundle's index was
// built with.
type Manifest struct {
	Entries []ManifestEntry
	Shards  int
}

// SpanFingerprint hashes one class span: FNV-64a over the class name and
// the span's dump lines, skipping the first line of the block (the
// "Class #N" header embeds the class's position in the dump, which would
// make the hash depend on where the class sits rather than what it
// contains). Identical class bodies therefore fingerprint identically
// across versions, positions and apps.
func SpanFingerprint(t *Text, sp ClassSpan) uint64 {
	h := fnv.New64a()
	h.Write([]byte(sp.Name))
	h.Write([]byte{0})
	for i := sp.Start + 1; i < sp.End; i++ {
		h.Write([]byte(t.lines[i]))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// BuildManifest computes the manifest of a dump under a shard plan. A nil
// plan (or one that does not tile this dump) assigns every span to shard
// 0 of a single-shard layout.
func BuildManifest(t *Text, plan *ShardPlan) *Manifest {
	m := &Manifest{Entries: make([]ManifestEntry, len(t.spans)), Shards: 1}
	assign := func(int) int { return 0 }
	if plan != nil && len(plan.assign) == len(t.spans) && plan.shards >= 1 {
		m.Shards = plan.shards
		assign = func(i int) int { return plan.assign[i] }
	}
	for i, sp := range t.spans {
		m.Entries[i] = ManifestEntry{
			Name:        sp.Name,
			Fingerprint: SpanFingerprint(t, sp),
			Lines:       sp.End - sp.Start,
			Shard:       assign(i),
		}
	}
	return m
}

// ShardFingerprints folds the per-class fingerprints into one fingerprint
// per shard (FNV-64a over the shard's entries in span order). Shards with
// identical class contents — the same SDK dex embedded by two apps, or an
// untouched shard across two versions — fingerprint identically, which is
// the key of the service's cross-app shard store.
func (m *Manifest) ShardFingerprints() []uint64 {
	if m.Shards < 1 {
		return nil
	}
	sums := make([]uint64, m.Shards)
	var buf [8]byte
	hashes := make([][]byte, m.Shards)
	for _, e := range m.Entries {
		if e.Shard < 0 || e.Shard >= m.Shards {
			continue
		}
		b := hashes[e.Shard]
		b = append(b, e.Name...)
		b = append(b, 0)
		binary.LittleEndian.PutUint64(buf[:], e.Fingerprint)
		b = append(b, buf[:]...)
		hashes[e.Shard] = b
	}
	for s := range sums {
		h := fnv.New64a()
		h.Write(hashes[s])
		sums[s] = h.Sum64()
	}
	return sums
}

// ManifestDiff is the result of diffing two manifests, expressed as class
// names: a class is Changed when both versions contain it with different
// fingerprints, Added when only the new version does, Removed when only
// the old one does. Shard counters compare shard fingerprints: a shard of
// the new manifest whose fingerprint appears among the old manifest's
// shard fingerprints is unchanged.
type ManifestDiff struct {
	Changed   []string
	Added     []string
	Removed   []string
	Unchanged int // classes present in both versions with equal fingerprints

	ShardsUnchanged int
	ShardsChanged   int
}

// Touched returns the set of class names a delta run must treat as dirty:
// changed, added and removed classes.
func (d *ManifestDiff) Touched() map[string]bool {
	set := make(map[string]bool, len(d.Changed)+len(d.Added)+len(d.Removed))
	for _, n := range d.Changed {
		set[n] = true
	}
	for _, n := range d.Added {
		set[n] = true
	}
	for _, n := range d.Removed {
		set[n] = true
	}
	return set
}

// classFold maps class name -> folded fingerprint, combining duplicate
// names (which a merged multidex dump can in principle contain) in span
// order so the fold stays deterministic.
func classFold(m *Manifest) map[string]uint64 {
	out := make(map[string]uint64, len(m.Entries))
	for _, e := range m.Entries {
		if prev, ok := out[e.Name]; ok {
			h := fnv.New64a()
			var buf [16]byte
			binary.LittleEndian.PutUint64(buf[0:8], prev)
			binary.LittleEndian.PutUint64(buf[8:16], e.Fingerprint)
			h.Write(buf[:])
			out[e.Name] = h.Sum64()
			continue
		}
		out[e.Name] = e.Fingerprint
	}
	return out
}

// DiffManifests compares the old and new manifests class-by-class and
// shard-by-shard. Class lists come back sorted by first appearance in the
// new manifest (Removed: in the old), so the diff is deterministic.
func DiffManifests(old, new *Manifest) *ManifestDiff {
	d := &ManifestDiff{}
	oldFold := classFold(old)
	newFold := classFold(new)
	seen := make(map[string]bool, len(new.Entries))
	for _, e := range new.Entries {
		if seen[e.Name] {
			continue
		}
		seen[e.Name] = true
		oldFp, ok := oldFold[e.Name]
		switch {
		case !ok:
			d.Added = append(d.Added, e.Name)
		case oldFp != newFold[e.Name]:
			d.Changed = append(d.Changed, e.Name)
		default:
			d.Unchanged++
		}
	}
	seenOld := make(map[string]bool, len(old.Entries))
	for _, e := range old.Entries {
		if seenOld[e.Name] {
			continue
		}
		seenOld[e.Name] = true
		if _, ok := newFold[e.Name]; !ok {
			d.Removed = append(d.Removed, e.Name)
		}
	}
	oldShards := make(map[uint64]bool)
	for _, fp := range old.ShardFingerprints() {
		oldShards[fp] = true
	}
	for _, fp := range new.ShardFingerprints() {
		if oldShards[fp] {
			d.ShardsUnchanged++
		} else {
			d.ShardsChanged++
		}
	}
	return d
}

// TotalClasses returns the distinct class count of both manifests' union
// — the size the shard-diff charge scales with.
func (d *ManifestDiff) TotalClasses() int {
	return d.Unchanged + len(d.Changed) + len(d.Added) + len(d.Removed)
}

// LinesOf sums the dump lines of the named classes in this manifest
// (duplicate names count every occurrence).
func (m *Manifest) LinesOf(classes map[string]bool) int {
	n := 0
	for _, e := range m.Entries {
		if classes[e.Name] {
			n += e.Lines
		}
	}
	return n
}

// TotalLines sums every entry's dump lines.
func (m *Manifest) TotalLines() int {
	n := 0
	for _, e := range m.Entries {
		n += e.Lines
	}
	return n
}

// BuildPartialIndex tokenizes only the spans of the named classes into a
// fresh single index. Postings keep global dump line numbers, so lookups
// against the partial index return lines of the full dump — exactly what
// the delta engine's replay probe needs: it re-runs a prior sink's
// recorded search commands against just the dirty spans to prove none of
// them gained a hit. The caller charges the meter for the tokenized
// lines.
func BuildPartialIndex(t *Text, classes map[string]bool) *Index {
	idx := newIndex(0)
	for _, sp := range t.spans {
		if !classes[sp.Name] {
			continue
		}
		for i := sp.Start; i < sp.End; i++ {
			idx.addLine(int32(i), t.lines[i])
		}
		idx.lines += sp.End - sp.Start
	}
	return idx
}

// SpanOf returns the span of the named class (the first occurrence, for
// the degenerate duplicate case) and whether it exists.
func (t *Text) SpanOf(name string) (ClassSpan, bool) {
	for _, sp := range t.spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return ClassSpan{}, false
}
