// Package manifest models the AndroidManifest.xml of an app: the package
// name and the set of declared components with their intent filters.
// Component registration is what makes lifecycle handlers valid entry
// points, so both BackDroid and the whole-app baseline consume this model —
// BackDroid checks registration during its lifecycle and <clinit> searches,
// while the baseline (like Amandroid) derives its entry set from it.
package manifest

import (
	"encoding/xml"
	"fmt"
)

// ComponentKind is one of the four Android component kinds.
type ComponentKind int

// Component kinds.
const (
	Activity ComponentKind = iota + 1
	Service
	Receiver
	Provider
)

var kindNames = map[ComponentKind]string{
	Activity: "activity",
	Service:  "service",
	Receiver: "receiver",
	Provider: "provider",
}

var kindByName = map[string]ComponentKind{
	"activity": Activity,
	"service":  Service,
	"receiver": Receiver,
	"provider": Provider,
}

// String returns the manifest tag name of the kind.
func (k ComponentKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("component(%d)", int(k))
}

// IntentFilter is a declared intent filter.
type IntentFilter struct {
	Actions    []string `xml:"action"`
	Categories []string `xml:"category"`
}

// Component is one registered component.
type Component struct {
	Kind     ComponentKind  `xml:"-"`
	Name     string         `xml:"name,attr"` // dotted class name
	Exported bool           `xml:"exported,attr"`
	Filters  []IntentFilter `xml:"intent-filter"`
}

// HandlesAction reports whether any intent filter declares the action.
func (c *Component) HandlesAction(action string) bool {
	for _, f := range c.Filters {
		for _, a := range f.Actions {
			if a == action {
				return true
			}
		}
	}
	return false
}

// Manifest is the app manifest.
type Manifest struct {
	Package    string
	Components []Component
}

// New returns an empty manifest for the given package.
func New(pkg string) *Manifest {
	return &Manifest{Package: pkg}
}

// Add registers a component and returns the manifest for chaining.
func (m *Manifest) Add(kind ComponentKind, name string, filters ...IntentFilter) *Manifest {
	m.Components = append(m.Components, Component{
		Kind:     kind,
		Name:     name,
		Exported: len(filters) > 0,
		Filters:  filters,
	})
	return m
}

// Component returns the registered component with the given class name, or
// nil when the class is not registered. Classes that exist in the dex but
// are absent here are exactly the "unregistered component" false-positive
// source the paper diagnoses in Amandroid (Sec. VI-C).
func (m *Manifest) Component(name string) *Component {
	for i := range m.Components {
		if m.Components[i].Name == name {
			return &m.Components[i]
		}
	}
	return nil
}

// IsRegistered reports whether the class name is a registered component.
func (m *Manifest) IsRegistered(name string) bool { return m.Component(name) != nil }

// ComponentsOfKind returns all components of one kind.
func (m *Manifest) ComponentsOfKind(kind ComponentKind) []Component {
	var out []Component
	for _, c := range m.Components {
		if c.Kind == kind {
			out = append(out, c)
		}
	}
	return out
}

// ComponentForAction returns the first component whose intent filters
// declare the action, or nil. Used to resolve implicit ICC.
func (m *Manifest) ComponentForAction(action string) *Component {
	for i := range m.Components {
		if m.Components[i].HandlesAction(action) {
			return &m.Components[i]
		}
	}
	return nil
}

// xmlManifest is the XML serialization shape.
type xmlManifest struct {
	XMLName     xml.Name       `xml:"manifest"`
	Package     string         `xml:"package,attr"`
	Application xmlApplication `xml:"application"`
}

type xmlApplication struct {
	Activities []xmlComponent `xml:"activity"`
	Services   []xmlComponent `xml:"service"`
	Receivers  []xmlComponent `xml:"receiver"`
	Providers  []xmlComponent `xml:"provider"`
}

type xmlComponent struct {
	Name     string            `xml:"name,attr"`
	Exported bool              `xml:"exported,attr"`
	Filters  []xmlIntentFilter `xml:"intent-filter"`
}

type xmlIntentFilter struct {
	Actions    []xmlNamed `xml:"action"`
	Categories []xmlNamed `xml:"category"`
}

type xmlNamed struct {
	Name string `xml:"name,attr"`
}

// ToXML serializes the manifest into AndroidManifest.xml form.
func (m *Manifest) ToXML() ([]byte, error) {
	xm := xmlManifest{Package: m.Package}
	for _, c := range m.Components {
		xc := xmlComponent{Name: c.Name, Exported: c.Exported}
		for _, f := range c.Filters {
			var xf xmlIntentFilter
			for _, a := range f.Actions {
				xf.Actions = append(xf.Actions, xmlNamed{Name: a})
			}
			for _, cat := range f.Categories {
				xf.Categories = append(xf.Categories, xmlNamed{Name: cat})
			}
			xc.Filters = append(xc.Filters, xf)
		}
		switch c.Kind {
		case Activity:
			xm.Application.Activities = append(xm.Application.Activities, xc)
		case Service:
			xm.Application.Services = append(xm.Application.Services, xc)
		case Receiver:
			xm.Application.Receivers = append(xm.Application.Receivers, xc)
		case Provider:
			xm.Application.Providers = append(xm.Application.Providers, xc)
		default:
			return nil, fmt.Errorf("manifest: unknown component kind %v", c.Kind)
		}
	}
	return xml.MarshalIndent(xm, "", "  ")
}

// ParseXML parses AndroidManifest.xml bytes.
func ParseXML(data []byte) (*Manifest, error) {
	var xm xmlManifest
	if err := xml.Unmarshal(data, &xm); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	m := New(xm.Package)
	appendAll := func(kind ComponentKind, comps []xmlComponent) {
		for _, xc := range comps {
			c := Component{Kind: kind, Name: xc.Name, Exported: xc.Exported}
			for _, xf := range xc.Filters {
				var f IntentFilter
				for _, a := range xf.Actions {
					f.Actions = append(f.Actions, a.Name)
				}
				for _, cat := range xf.Categories {
					f.Categories = append(f.Categories, cat.Name)
				}
				c.Filters = append(c.Filters, f)
			}
			m.Components = append(m.Components, c)
		}
	}
	appendAll(Activity, xm.Application.Activities)
	appendAll(Service, xm.Application.Services)
	appendAll(Receiver, xm.Application.Receivers)
	appendAll(Provider, xm.Application.Providers)
	_ = kindByName // reserved for tag-driven parsing extensions
	return m, nil
}
