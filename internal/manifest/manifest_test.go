package manifest

import "testing"

func sample() *Manifest {
	m := New("com.example.app")
	m.Add(Activity, "com.example.app.MainActivity", IntentFilter{
		Actions:    []string{"android.intent.action.MAIN"},
		Categories: []string{"android.intent.category.LAUNCHER"},
	})
	m.Add(Service, "com.example.app.SyncService")
	m.Add(Receiver, "com.example.app.BootReceiver", IntentFilter{
		Actions: []string{"android.intent.action.BOOT_COMPLETED"},
	})
	m.Add(Provider, "com.example.app.DataProvider")
	return m
}

func TestComponentLookup(t *testing.T) {
	m := sample()
	if !m.IsRegistered("com.example.app.MainActivity") {
		t.Error("MainActivity should be registered")
	}
	if m.IsRegistered("com.example.app.HiddenActivity") {
		t.Error("HiddenActivity should not be registered")
	}
	c := m.Component("com.example.app.SyncService")
	if c == nil || c.Kind != Service {
		t.Fatalf("SyncService lookup = %+v", c)
	}
	if c.Exported {
		t.Error("filter-less component should not be exported")
	}
}

func TestComponentsOfKind(t *testing.T) {
	m := sample()
	if got := len(m.ComponentsOfKind(Activity)); got != 1 {
		t.Errorf("activities = %d, want 1", got)
	}
	if got := len(m.ComponentsOfKind(Provider)); got != 1 {
		t.Errorf("providers = %d, want 1", got)
	}
}

func TestComponentForAction(t *testing.T) {
	m := sample()
	c := m.ComponentForAction("android.intent.action.BOOT_COMPLETED")
	if c == nil || c.Name != "com.example.app.BootReceiver" {
		t.Fatalf("ComponentForAction = %+v", c)
	}
	if m.ComponentForAction("no.such.ACTION") != nil {
		t.Error("unknown action should return nil")
	}
}

func TestHandlesAction(t *testing.T) {
	m := sample()
	c := m.Component("com.example.app.MainActivity")
	if !c.HandlesAction("android.intent.action.MAIN") {
		t.Error("MAIN action should be handled")
	}
	if c.HandlesAction("android.intent.action.VIEW") {
		t.Error("VIEW action should not be handled")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	m := sample()
	data, err := m.ToXML()
	if err != nil {
		t.Fatalf("MarshalXML: %v", err)
	}
	got, err := ParseXML(data)
	if err != nil {
		t.Fatalf("ParseXML: %v", err)
	}
	if got.Package != m.Package {
		t.Errorf("Package = %q, want %q", got.Package, m.Package)
	}
	if len(got.Components) != len(m.Components) {
		t.Fatalf("components = %d, want %d", len(got.Components), len(m.Components))
	}
	for _, want := range m.Components {
		c := got.Component(want.Name)
		if c == nil {
			t.Fatalf("component %s lost in round trip", want.Name)
		}
		if c.Kind != want.Kind || c.Exported != want.Exported {
			t.Errorf("component %s = %+v, want %+v", want.Name, c, want)
		}
		if len(c.Filters) != len(want.Filters) {
			t.Errorf("component %s filters = %d, want %d", want.Name, len(c.Filters), len(want.Filters))
		}
	}
	// Filter contents survive.
	c := got.Component("com.example.app.MainActivity")
	if !c.HandlesAction("android.intent.action.MAIN") {
		t.Error("action lost in round trip")
	}
}

func TestParseXMLError(t *testing.T) {
	if _, err := ParseXML([]byte("not xml <")); err == nil {
		t.Error("ParseXML should fail on malformed input")
	}
}

func TestKindString(t *testing.T) {
	if Activity.String() != "activity" || Service.String() != "service" {
		t.Error("kind names wrong")
	}
	if ComponentKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
