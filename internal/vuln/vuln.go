// Package vuln evaluates vulnerability rules over the dataflow
// representations that forward propagation computed for sink parameters:
// insecure ECB cipher transformations and allow-all SSL hostname
// verification — the two sink-based problems of the paper's evaluation
// (Sec. VI-A).
package vuln

import (
	"strings"

	"backdroid/internal/android"
	"backdroid/internal/constprop"
)

// Judge returns whether any of the possible sink parameter values violates
// the rule.
func Judge(rule android.RuleKind, values []constprop.Value) bool {
	for _, v := range values {
		if judgeOne(rule, v) {
			return true
		}
	}
	return false
}

func judgeOne(rule android.RuleKind, v constprop.Value) bool {
	switch rule {
	case android.RuleCryptoECB:
		s, ok := v.(constprop.Str)
		return ok && android.IsInsecureCipherTransformation(s.S)

	case android.RuleSSLAllowAll:
		switch t := v.(type) {
		case constprop.Token:
			// The ALLOW_ALL_HOSTNAME_VERIFIER framework constant.
			return strings.HasPrefix(t.Sig, android.AllowAllVerifierField.SootSignature())
		case *constprop.Obj:
			// new AllowAllHostnameVerifier().
			return t.Class == android.AllowAllVerifierClass
		}
	}
	return false
}

// Explain renders a human-readable reason for an insecure verdict, or ""
// when the values are secure.
func Explain(rule android.RuleKind, values []constprop.Value) string {
	for _, v := range values {
		if !judgeOne(rule, v) {
			continue
		}
		switch rule {
		case android.RuleCryptoECB:
			return "insecure ECB cipher transformation " + v.String()
		case android.RuleSSLAllowAll:
			return "allow-all hostname verifier " + v.String()
		}
	}
	return ""
}
