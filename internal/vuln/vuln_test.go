package vuln

import (
	"strings"
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/constprop"
)

func TestJudgeCryptoECB(t *testing.T) {
	tests := []struct {
		give constprop.Value
		want bool
	}{
		{constprop.Str{S: "AES/ECB/PKCS5Padding"}, true},
		{constprop.Str{S: "AES"}, true},
		{constprop.Str{S: "AES/GCM/NoPadding"}, false},
		{constprop.Num{N: 7}, false},
		{constprop.Unknown{}, false},
	}
	for _, tt := range tests {
		got := Judge(android.RuleCryptoECB, []constprop.Value{tt.give})
		if got != tt.want {
			t.Errorf("Judge(crypto, %v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestJudgeSSLAllowAll(t *testing.T) {
	allowAllToken := constprop.Token{Sig: android.AllowAllVerifierField.SootSignature()}
	allowAllObj := &constprop.Obj{ID: 1, Class: android.AllowAllVerifierClass,
		Fields: map[string]*constprop.Fact{}}
	otherObj := &constprop.Obj{ID: 2, Class: "com.app.StrictVerifier",
		Fields: map[string]*constprop.Fact{}}

	if !Judge(android.RuleSSLAllowAll, []constprop.Value{allowAllToken}) {
		t.Error("ALLOW_ALL token must be insecure")
	}
	if !Judge(android.RuleSSLAllowAll, []constprop.Value{allowAllObj}) {
		t.Error("AllowAllHostnameVerifier instance must be insecure")
	}
	if Judge(android.RuleSSLAllowAll, []constprop.Value{otherObj}) {
		t.Error("other verifier must be secure")
	}
	if Judge(android.RuleSSLAllowAll, []constprop.Value{constprop.Str{S: "ALLOW_ALL"}}) {
		t.Error("plain strings are not verifier constants")
	}
}

func TestJudgeAnyValueTriggers(t *testing.T) {
	values := []constprop.Value{
		constprop.Str{S: "AES/CBC/PKCS5Padding"},
		constprop.Str{S: "DES"}, // insecure among secure
	}
	if !Judge(android.RuleCryptoECB, values) {
		t.Error("one insecure possible value suffices")
	}
	if Judge(android.RuleCryptoECB, nil) {
		t.Error("no values -> secure")
	}
}

func TestJudgeUnknownRule(t *testing.T) {
	if Judge(android.RuleKind(0), []constprop.Value{constprop.Str{S: "AES"}}) {
		t.Error("unknown rule must not fire")
	}
}

func TestExplain(t *testing.T) {
	got := Explain(android.RuleCryptoECB, []constprop.Value{constprop.Str{S: "AES/ECB/X"}})
	if !strings.Contains(got, "ECB") {
		t.Errorf("explain = %q", got)
	}
	got = Explain(android.RuleSSLAllowAll, []constprop.Value{
		constprop.Token{Sig: android.AllowAllVerifierField.SootSignature()}})
	if !strings.Contains(got, "allow-all") {
		t.Errorf("explain = %q", got)
	}
	if Explain(android.RuleCryptoECB, []constprop.Value{constprop.Str{S: "AES/CBC/X"}}) != "" {
		t.Error("secure values must not be explained")
	}
}
