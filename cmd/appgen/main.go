// Command appgen generates synthetic app containers with known ground
// truth, either a single app or the full evaluation corpus.
//
// Usage:
//
//	appgen -out DIR [-corpus | -heavytail] [-apps N] [-size MB] [-seed N]
//	       [-update KIND] [-update-seed N] [-target N]
//
// With -heavytail, the work-stealing benchmark corpus is written: one
// many-sink outlier app first, then -apps small apps — the shape where
// job-level fleet placement leaves one node grinding the outlier's sink
// tail alone while the rest sit idle.
//
// With -update, every generated app additionally gets a version N+1
// container written next to it as <name>.v2.apk, mutated per KIND:
// change-literal (flip one sink's parameter security), new-flow (append
// an exported service with a fresh sink) or add-class (append an inert
// class). The pairs feed the delta-analysis bench and CI legs:
// `backdroid -delta name.apk name.v2.apk`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"backdroid/internal/android"
	"backdroid/internal/appgen"
)

func main() {
	var (
		out     = flag.String("out", ".", "output directory")
		corpus  = flag.Bool("corpus", false, "generate the 144-app evaluation corpus")
		tail    = flag.Bool("heavytail", false, "generate the work-stealing corpus: one many-sink outlier plus -apps small apps")
		apps    = flag.Int("apps", 144, "corpus size (with -corpus; small-app count with -heavytail)")
		sizeMB  = flag.Float64("size", 10, "app size in MB (single-app mode)")
		seed    = flag.Int64("seed", 1, "generation seed")
		update  = flag.String("update", "", "also write <name>.v2.apk updates: change-literal, new-flow or add-class")
		updSeed = flag.Int64("update-seed", 2, "seed of the update mutation")
		target  = flag.Int("target", 0, "sink index mutated by change-literal")
	)
	flag.Parse()
	var mutation appgen.Mutation
	if *update != "" {
		m, err := parseMutation(*update)
		if err != nil {
			fmt.Fprintln(os.Stderr, "appgen:", err)
			os.Exit(2)
		}
		mutation = m
	}
	if err := run(*out, *corpus, *tail, *apps, *sizeMB, *seed, mutation, *updSeed, *target); err != nil {
		fmt.Fprintln(os.Stderr, "appgen:", err)
		os.Exit(1)
	}
}

func parseMutation(s string) (appgen.Mutation, error) {
	for _, m := range appgen.Mutations() {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown update kind %q (change-literal, new-flow or add-class)", s)
}

func run(out string, corpus, tail bool, apps int, sizeMB float64, seed int64, mutation appgen.Mutation, updSeed int64, target int) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	var specs []appgen.Spec
	switch {
	case corpus:
		opts := appgen.DefaultCorpus()
		opts.Apps = apps
		opts.Seed = seed
		specs = appgen.EvalCorpus(opts)
	case tail:
		specs = appgen.HeavyTailCorpus(appgen.HeavyTailOptions{
			SmallApps: apps, Seed: seed,
		})
	default:
		specs = []appgen.Spec{{
			Name:   "com.example.generated",
			Seed:   seed,
			SizeMB: sizeMB,
			Sinks: []appgen.SinkSpec{
				{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB, Insecure: true},
				{Flow: appgen.FlowAsyncExecutor, Rule: android.RuleSSLAllowAll, Insecure: true},
				{Flow: appgen.FlowClinit, Rule: android.RuleCryptoECB, Insecure: false},
			},
		}}
	}
	for _, spec := range specs {
		app, truth, err := appgen.Generate(spec)
		if err != nil {
			return err
		}
		path := filepath.Join(out, spec.Name+".apk")
		if err := app.Save(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%.1f MB nominal, %d instructions, %d sinks)\n",
			path, spec.SizeMB, app.InstructionCount(), len(truth.Sinks))
		if mutation != 0 {
			tgt := target
			if tgt >= len(spec.Sinks) {
				tgt = 0
			}
			upd, updTruth, err := appgen.GenerateUpdate(appgen.AppUpdateSpec{
				Base: spec, Mutation: mutation, TargetSink: tgt, Seed: updSeed,
			})
			if err != nil {
				return err
			}
			vpath := filepath.Join(out, spec.Name+".v2.apk")
			if err := upd.Save(vpath); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%s update, %d sinks)\n", vpath, mutation, len(updTruth.Sinks))
		}
	}
	return nil
}
