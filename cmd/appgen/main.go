// Command appgen generates synthetic app containers with known ground
// truth, either a single app or the full evaluation corpus.
//
// Usage:
//
//	appgen -out DIR [-corpus] [-apps N] [-size MB] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"backdroid/internal/android"
	"backdroid/internal/appgen"
)

func main() {
	var (
		out    = flag.String("out", ".", "output directory")
		corpus = flag.Bool("corpus", false, "generate the 144-app evaluation corpus")
		apps   = flag.Int("apps", 144, "corpus size (with -corpus)")
		sizeMB = flag.Float64("size", 10, "app size in MB (single-app mode)")
		seed   = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()
	if err := run(*out, *corpus, *apps, *sizeMB, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "appgen:", err)
		os.Exit(1)
	}
}

func run(out string, corpus bool, apps int, sizeMB float64, seed int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	var specs []appgen.Spec
	if corpus {
		opts := appgen.DefaultCorpus()
		opts.Apps = apps
		opts.Seed = seed
		specs = appgen.EvalCorpus(opts)
	} else {
		specs = []appgen.Spec{{
			Name:   "com.example.generated",
			Seed:   seed,
			SizeMB: sizeMB,
			Sinks: []appgen.SinkSpec{
				{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB, Insecure: true},
				{Flow: appgen.FlowAsyncExecutor, Rule: android.RuleSSLAllowAll, Insecure: true},
				{Flow: appgen.FlowClinit, Rule: android.RuleCryptoECB, Insecure: false},
			},
		}}
	}
	for _, spec := range specs {
		app, truth, err := appgen.Generate(spec)
		if err != nil {
			return err
		}
		path := filepath.Join(out, spec.Name+".apk")
		if err := app.Save(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%.1f MB nominal, %d instructions, %d sinks)\n",
			path, spec.SizeMB, app.InstructionCount(), len(truth.Sinks))
	}
	return nil
}
