package main

import (
	"os"
	"path/filepath"
	"testing"

	"backdroid/internal/apk"
)

func TestRunSingleApp(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, false, 0, 3, 7); err != nil {
		t.Fatalf("run: %v", err)
	}
	path := filepath.Join(dir, "com.example.generated.apk")
	app, err := apk.Load(path)
	if err != nil {
		t.Fatalf("generated container unreadable: %v", err)
	}
	if app.InstructionCount() == 0 {
		t.Error("generated app is empty")
	}
}

func TestRunSmallCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, true, 3, 1, 11); err != nil {
		t.Fatalf("run -corpus: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("corpus apps written = %d, want 3", len(entries))
	}
}

func TestRunBadOutputDir(t *testing.T) {
	if err := run("/proc/definitely/not/writable", false, 0, 1, 1); err == nil {
		t.Error("unwritable output dir must fail")
	}
}
