package main

import (
	"os"
	"path/filepath"
	"testing"

	"backdroid/internal/apk"
	"backdroid/internal/appgen"
)

func TestRunSingleApp(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, false, false, 0, 3, 7, 0, 0, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	path := filepath.Join(dir, "com.example.generated.apk")
	app, err := apk.Load(path)
	if err != nil {
		t.Fatalf("generated container unreadable: %v", err)
	}
	if app.InstructionCount() == 0 {
		t.Error("generated app is empty")
	}
}

func TestRunSmallCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, true, false, 3, 1, 11, 0, 0, 0); err != nil {
		t.Fatalf("run -corpus: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("corpus apps written = %d, want 3", len(entries))
	}
}

func TestRunHeavyTail(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, false, true, 2, 1, 11, 0, 0, 0); err != nil {
		t.Fatalf("run -heavytail: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("heavy-tail apps written = %d, want 3 (outlier + 2 small)", len(entries))
	}
	outlier, err := apk.Load(filepath.Join(dir, "com.outlier.manysink.apk"))
	if err != nil {
		t.Fatalf("outlier container unreadable: %v", err)
	}
	if outlier.InstructionCount() == 0 {
		t.Error("outlier app is empty")
	}
}

func TestRunWithUpdate(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, false, false, 0, 2, 7, appgen.MutateNewFlow, 5, 0); err != nil {
		t.Fatalf("run -update: %v", err)
	}
	base, err := apk.Load(filepath.Join(dir, "com.example.generated.apk"))
	if err != nil {
		t.Fatalf("base container unreadable: %v", err)
	}
	upd, err := apk.Load(filepath.Join(dir, "com.example.generated.v2.apk"))
	if err != nil {
		t.Fatalf("update container unreadable: %v", err)
	}
	if upd.InstructionCount() <= base.InstructionCount() {
		t.Errorf("new-flow update has %d instructions, base %d — update must grow",
			upd.InstructionCount(), base.InstructionCount())
	}
}

func TestParseMutation(t *testing.T) {
	for _, m := range appgen.Mutations() {
		got, err := parseMutation(m.String())
		if err != nil || got != m {
			t.Errorf("parseMutation(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := parseMutation("bogus"); err == nil {
		t.Error("bogus mutation accepted")
	}
}

func TestRunBadOutputDir(t *testing.T) {
	if err := run("/proc/definitely/not/writable", false, false, 0, 1, 1, 0, 0, 0); err == nil {
		t.Error("unwritable output dir must fail")
	}
}
