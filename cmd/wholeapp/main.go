// Command wholeapp analyzes an app container with the Amandroid-style
// whole-app baseline (or FlowDroid-style call graph generation only).
//
// Usage:
//
//	wholeapp [-callgraph-only] [-timeout MIN] app.apk...
package main

import (
	"flag"
	"fmt"
	"os"

	"backdroid/internal/apk"
	"backdroid/internal/wholeapp"
)

func main() {
	var (
		cgOnly  = flag.Bool("callgraph-only", false, "stop after call graph generation (FlowDroid-style)")
		timeout = flag.Float64("timeout", 300, "simulated-minute budget (0 = none)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: wholeapp [flags] app.apk...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Args(), *cgOnly, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "wholeapp:", err)
		os.Exit(1)
	}
}

func run(paths []string, cgOnly bool, timeout float64) error {
	opts := wholeapp.DefaultOptions()
	opts.TimeoutMinutes = timeout
	if cgOnly {
		opts.Mode = wholeapp.CallGraphOnly
	}
	for _, path := range paths {
		app, err := apk.Load(path)
		if err != nil {
			return err
		}
		a, err := wholeapp.New(app, opts)
		if err != nil {
			return err
		}
		report, err := a.Analyze()
		if err != nil {
			return err
		}
		printReport(report)
	}
	return nil
}

func printReport(r *wholeapp.Report) {
	fmt.Printf("== %s ==\n", r.App)
	switch {
	case r.TimedOut:
		fmt.Println("  TIMED OUT (no results)")
	case r.Err != nil:
		fmt.Printf("  ANALYSIS ERROR: %v\n", r.Err)
	}
	for _, f := range r.Findings {
		verdict := "secure"
		if f.Insecure {
			verdict = "INSECURE"
		}
		fmt.Printf("  %s in %s [%s] values=%v\n",
			f.Sink.Method.SootSignature(), f.Caller.SootSignature(), verdict, f.Values)
	}
	st := r.Stats
	fmt.Printf("  stats: %.2f sim-min, wall %v, CG %d nodes / %d edges, %d fixpoint passes\n",
		st.SimMinutes, st.WallTime.Round(1e6), st.CallGraphNodes, st.CallGraphEdges, st.FixpointPasses)
}
