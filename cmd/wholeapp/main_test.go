package main

import (
	"path/filepath"
	"testing"

	"backdroid/internal/testapps"
)

func fixturePath(t *testing.T) string {
	t.Helper()
	app, err := testapps.Fixture()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), app.Name+".apk")
	if err := app.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFullAnalysis(t *testing.T) {
	if err := run([]string{fixturePath(t)}, false, 300); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCallGraphOnly(t *testing.T) {
	if err := run([]string{fixturePath(t)}, true, 300); err != nil {
		t.Fatalf("run -callgraph-only: %v", err)
	}
}

func TestRunTimedOut(t *testing.T) {
	// A sub-minute budget forces the timed-out report path.
	if err := run([]string{fixturePath(t)}, false, 0.0001); err != nil {
		t.Fatalf("run with tiny budget: %v", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"/nonexistent/x.apk"}, false, 300); err == nil {
		t.Error("missing file must fail")
	}
}
