package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBaseline(t *testing.T, r Report) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleReport() Report {
	return Report{
		Corpus: CorpusMeta{Apps: 16, Scale: 0.15, Seed: 1},
		Backends: map[string]BackendCost{
			"linear":  {WorkUnits: 100000, LinesScanned: 5000000},
			"indexed": {WorkUnits: 20000},
			"sharded": {WorkUnits: 21000},
		},
		WarmCache: BackendCost{WorkUnits: 15000, IndexCacheHits: 16},
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	base := sampleReport()
	path := writeBaseline(t, base)

	cur := sampleReport()
	cur.Backends["indexed"] = BackendCost{WorkUnits: 21900} // +9.5%
	if err := gate(cur, path, 0.10); err != nil {
		t.Errorf("within-tolerance run failed the gate: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := sampleReport()
	path := writeBaseline(t, base)

	cur := sampleReport()
	cur.Backends["indexed"] = BackendCost{WorkUnits: 23000} // +15%
	if err := gate(cur, path, 0.10); err == nil {
		t.Error("15% charged-work regression passed the gate")
	}

	cur = sampleReport()
	lin := cur.Backends["linear"]
	lin.LinesScanned = 6000000 // +20% line scans at equal units
	cur.Backends["linear"] = lin
	if err := gate(cur, path, 0.10); err == nil {
		t.Error("line-scan regression passed the gate")
	}

	cur = sampleReport()
	cur.WarmCache.WorkUnits = 20000 // warm path regressed
	if err := gate(cur, path, 0.10); err == nil {
		t.Error("warm-cache regression passed the gate")
	}
}

func TestGateRejectsMismatchedCorpus(t *testing.T) {
	base := sampleReport()
	path := writeBaseline(t, base)
	cur := sampleReport()
	cur.Corpus.Apps = 32
	if err := gate(cur, path, 0.10); err == nil {
		t.Error("baseline for a different corpus accepted")
	}
}

func TestGateRejectsMissingBackend(t *testing.T) {
	base := sampleReport()
	path := writeBaseline(t, base)
	cur := sampleReport()
	delete(cur.Backends, "sharded")
	if err := gate(cur, path, 0.10); err == nil {
		t.Error("missing backend accepted")
	}
}

func TestGateMissingBaselineFile(t *testing.T) {
	if err := gate(sampleReport(), filepath.Join(t.TempDir(), "nope.json"), 0.10); err == nil {
		t.Error("missing baseline file accepted")
	}
}
