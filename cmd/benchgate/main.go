// Command benchgate is the CI bench-regression gate for the bytecode
// search stack. It analyzes the scaled benchmark corpus once per search
// backend (linear, indexed, sharded) plus a warm persistent-cache run,
// emits the charged-work measurements as JSON (BENCH_search.json), and
// fails when charged work regresses beyond the tolerance against a
// checked-in baseline.
//
// Usage:
//
//	benchgate [-apps N] [-scale F] [-seed N] [-baseline FILE] [-out FILE]
//	          [-tolerance F] [-write-baseline]
//
// Charged work is simulated time (deterministic for a given corpus), so
// the gate is immune to runner noise: a regression means the search stack
// really does more work, not that the CI machine was slow. The tolerance
// (default 10%) only absorbs deliberate cost-model recalibrations.
// Improvements are reported but do not fail the gate; refresh the
// baseline with -write-baseline when they should become the new floor.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"backdroid/internal/appgen"
	"backdroid/internal/bcsearch"
	"backdroid/internal/core"
	"backdroid/internal/experiments"
)

// BackendCost is the charged search work of one corpus run, summed over
// all apps. Deterministic for a given corpus and backend.
type BackendCost struct {
	LinesScanned    int64   `json:"lines_scanned"`
	PostingsScanned int64   `json:"postings_scanned"`
	MergedPostings  int64   `json:"merged_postings"`
	IndexBuilds     int     `json:"index_builds"`
	IndexCacheHits  int     `json:"index_cache_hits"`
	WorkUnits       int64   `json:"work_units"`
	SimMinutes      float64 `json:"sim_minutes"`
}

// CorpusMeta identifies the measured corpus; baselines for a different
// corpus are not comparable.
type CorpusMeta struct {
	Apps  int     `json:"apps"`
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`
}

// Report is the BENCH_search.json schema.
type Report struct {
	Corpus         CorpusMeta             `json:"corpus"`
	Backends       map[string]BackendCost `json:"backends"`
	WarmCache      BackendCost            `json:"warm_cache"` // sharded backend, pre-warmed index cache
	SpeedupIndexed float64                `json:"speedup_indexed"`
	SpeedupSharded float64                `json:"speedup_sharded"`
}

func main() {
	var (
		apps      = flag.Int("apps", 16, "corpus size")
		scale     = flag.Float64("scale", 0.15, "app size scale factor")
		seed      = flag.Int64("seed", 20200523, "corpus seed")
		baseline  = flag.String("baseline", "", "baseline JSON to gate against (empty = no gate)")
		out       = flag.String("out", "BENCH_search.json", "output JSON path")
		tolerance = flag.Float64("tolerance", 0.10, "allowed charged-work regression fraction")
		write     = flag.Bool("write-baseline", false, "overwrite the baseline with this run's numbers")
	)
	flag.Parse()
	if err := run(*apps, *scale, *seed, *baseline, *out, *tolerance, *write); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(apps int, scale float64, seed int64, baselinePath, outPath string, tolerance float64, writeBaseline bool) error {
	meta := CorpusMeta{Apps: apps, Scale: scale, Seed: seed}
	report := Report{Corpus: meta, Backends: make(map[string]BackendCost)}

	for _, kind := range []bcsearch.BackendKind{bcsearch.BackendLinear, bcsearch.BackendIndexed, bcsearch.BackendSharded} {
		cost, err := measure(meta, kind, "")
		if err != nil {
			return err
		}
		report.Backends[kind.String()] = cost
		fmt.Fprintf(os.Stderr, "%-8s %10d units, %9d line-scans, %9d postings\n",
			kind, cost.WorkUnits, cost.LinesScanned, cost.PostingsScanned)
	}

	// Warm persistent-cache run: first pass populates the cache directory,
	// second pass must load every index instead of tokenizing.
	cacheDir, err := os.MkdirTemp("", "benchgate-idx-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)
	if _, err := measure(meta, bcsearch.BackendSharded, cacheDir); err != nil {
		return err
	}
	report.WarmCache, err = measure(meta, bcsearch.BackendSharded, cacheDir)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%-8s %10d units, %d cache hits, %d index builds\n",
		"warm", report.WarmCache.WorkUnits, report.WarmCache.IndexCacheHits, report.WarmCache.IndexBuilds)

	lin := report.Backends["linear"].WorkUnits
	if idx := report.Backends["indexed"].WorkUnits; idx > 0 {
		report.SpeedupIndexed = float64(lin) / float64(idx)
	}
	if sh := report.Backends["sharded"].WorkUnits; sh > 0 {
		report.SpeedupSharded = float64(lin) / float64(sh)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (speedup indexed %.2fx, sharded %.2fx)\n",
		outPath, report.SpeedupIndexed, report.SpeedupSharded)

	// Invariants the gate always enforces, baseline or not.
	if report.WarmCache.IndexBuilds != 0 {
		return fmt.Errorf("warm cache run built %d indexes, want 0 (persistent cache not hitting)", report.WarmCache.IndexBuilds)
	}
	if report.SpeedupIndexed <= 1 || report.SpeedupSharded <= 1 {
		return fmt.Errorf("index speedups %.2fx/%.2fx not >1 — index backends charge more than the linear scan",
			report.SpeedupIndexed, report.SpeedupSharded)
	}

	if writeBaseline {
		if baselinePath == "" {
			return fmt.Errorf("-write-baseline needs -baseline PATH")
		}
		if err := os.WriteFile(baselinePath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "baseline %s refreshed\n", baselinePath)
		return nil
	}
	if baselinePath == "" {
		return nil
	}
	return gate(report, baselinePath, tolerance)
}

// measure runs BackDroid over the corpus with the given backend and sums
// the charged search work.
func measure(meta CorpusMeta, kind bcsearch.BackendKind, cacheDir string) (BackendCost, error) {
	opts := core.DefaultOptions()
	opts.SearchBackend = kind
	run, err := experiments.RunCorpus(
		appgen.CorpusOptions{Apps: meta.Apps, Seed: meta.Seed, SizeScale: meta.Scale},
		experiments.RunConfig{
			RunBackDroid:     true,
			BackDroidOptions: &opts,
			Workers:          runtime.NumCPU(),
			IndexCacheDir:    cacheDir,
		})
	if err != nil {
		return BackendCost{}, err
	}
	var c BackendCost
	for _, a := range run.Apps {
		s := a.BackDroid.Stats
		c.LinesScanned += s.Search.LinesScanned
		c.PostingsScanned += s.Search.PostingsScanned
		c.MergedPostings += s.Search.MergedPostings
		c.IndexBuilds += s.Search.IndexBuilds
		c.IndexCacheHits += s.Search.IndexCacheHits
		c.WorkUnits += s.WorkUnits
		c.SimMinutes += s.SimMinutes
	}
	return c, nil
}

// gate compares the run against the baseline and fails on charged-work
// regressions beyond the tolerance.
func gate(report Report, baselinePath string, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w (run with -write-baseline to create it)", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	if base.Corpus != report.Corpus {
		return fmt.Errorf("baseline measured corpus %+v, this run %+v — not comparable", base.Corpus, report.Corpus)
	}
	var failures []string
	check := func(name, metric string, cur, old int64) {
		if old <= 0 {
			return
		}
		limit := float64(old) * (1 + tolerance)
		switch {
		case float64(cur) > limit:
			failures = append(failures, fmt.Sprintf(
				"%s %s regressed: %d -> %d (+%.1f%%, limit +%.0f%%)",
				name, metric, old, cur, 100*float64(cur-old)/float64(old), 100*tolerance))
		case cur < old:
			fmt.Fprintf(os.Stderr, "note: %s %s improved: %d -> %d (-%.1f%%); consider refreshing the baseline\n",
				name, metric, old, cur, 100*float64(old-cur)/float64(old))
		}
	}
	for name, old := range base.Backends {
		cur, ok := report.Backends[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("backend %q in baseline but not measured", name))
			continue
		}
		check(name, "work_units", cur.WorkUnits, old.WorkUnits)
		check(name, "lines_scanned", cur.LinesScanned, old.LinesScanned)
	}
	check("warm-cache", "work_units", report.WarmCache.WorkUnits, base.WarmCache.WorkUnits)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "REGRESSION:", f)
		}
		return fmt.Errorf("%d charged-work regression(s) vs %s", len(failures), baselinePath)
	}
	fmt.Fprintln(os.Stderr, "bench gate passed: no charged-work regressions")
	return nil
}
