// Command benchgate is the CI bench-regression gate for the bytecode
// search stack. It analyzes the scaled benchmark corpus once per search
// backend (linear, indexed, sharded), once with shard-parallel lookups,
// cold+warm against the persistent bundle cache, and twice through the
// batch service scheduler with an in-memory bundle store; emits the
// charged-work measurements as JSON (BENCH_search.json, the warm-path
// trajectory BENCH_warm.json and the batch-reuse leg BENCH_service.json),
// and fails when charged work regresses beyond the tolerance against a
// checked-in baseline.
//
// Hard invariants enforced on every run, baseline or not:
//   - index backends must beat the linear scan (speedup > 1);
//   - a warm run must charge zero index builds AND zero disassembly
//     (every app loads both bundle sections);
//   - shard-parallel lookups must not change a single detection verdict;
//   - the batch-reuse second pass must charge zero index builds and zero
//     disassembly (every app a bundle-store hit), beat the first pass,
//     and both scheduler passes must reproduce the plain RunCorpus
//     detection output bit for bit;
//   - the delta-update leg (BENCH_delta.json) must reproduce the cold
//     detection output for every mutation kind, a one-class update
//     (change-literal, add-class) must charge under 10% of its cold
//     re-analysis, and the shard store must dedup postings bytes across
//     the two versions;
//   - the settled-storm leg (BENCH_settled.json): the corpus is analyzed
//     cold once through a scheduler with a report store, then resubmitted
//     ten more times. Every storm pass must be served entirely from the
//     settled tier — zero disassembly, zero index builds, one settled
//     lookup per app — with canonical report encodings bitwise identical
//     to the cold pass, and the whole storm must charge under 1% of the
//     cold pass;
//   - the fleet-chaos leg (BENCH_fleet.json): the tenant corpus runs
//     twice through a 4-node worker fleet — uninterrupted, and under a
//     deterministic fault plan that kills two nodes mid-corpus. The
//     chaos run's canonical per-job report union must be byte-identical
//     to the uninterrupted run's, the light tenant must still dispatch
//     inside the WRR fairness bound while handoff re-dispatches compete
//     for slots, and the failure-detection + handoff + backoff overhead
//     must stay under 10% of the charged analysis work;
//   - the heavy-tail leg (BENCH_steal.json): the work-stealing corpus —
//     one 121-sink outlier submitted first, then small apps — runs twice
//     through a 4-node fleet, with sink-chunk stealing off (SinkChunk=0)
//     and on (the defaults). The steal run's per-job report union must
//     be byte-identical to the unsplit run's, the charged makespan (the
//     busiest node's odometer) must shrink by at least 1.5x, and the
//     steal + remote-fetch overhead must stay under 10% of the charged
//     analysis work.
//
// Usage:
//
//	benchgate [-apps N] [-scale F] [-seed N] [-baseline FILE] [-out FILE]
//	          [-warm-out FILE] [-service-out FILE] [-delta-out FILE]
//	          [-settled-out FILE] [-fleet-out FILE] [-steal-out FILE]
//	          [-tolerance F] [-write-baseline]
//
// Charged work is simulated time (deterministic for a given corpus), so
// the gate is immune to runner noise: a regression means the search stack
// really does more work, not that the CI machine was slow. The tolerance
// (default 10%) only absorbs deliberate cost-model recalibrations.
// Improvements are reported but do not fail the gate; refresh the
// baseline with -write-baseline when they should become the new floor.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"backdroid/internal/android"
	"backdroid/internal/apk"
	"backdroid/internal/appgen"
	"backdroid/internal/bcsearch"
	"backdroid/internal/core"
	"backdroid/internal/dexdump"
	"backdroid/internal/experiments"
	"backdroid/internal/faultinject"
	"backdroid/internal/obs"
	"backdroid/internal/service"
	"backdroid/internal/service/journal"
)

// BackendCost is the charged search work of one corpus run, summed over
// all apps. Deterministic for a given corpus and backend.
type BackendCost struct {
	LinesScanned    int64   `json:"lines_scanned"`
	PostingsScanned int64   `json:"postings_scanned"`
	MergedPostings  int64   `json:"merged_postings"`
	IndexBuilds     int     `json:"index_builds"`
	IndexCacheHits  int     `json:"index_cache_hits"`
	DumpCacheHits   int     `json:"dump_cache_hits"`
	BundleStoreHits int     `json:"bundle_store_hits"`
	DumpLinesCold   int64   `json:"dump_lines_disassembled"`
	ParallelLookups int     `json:"parallel_lookups"`
	ForwardMemoHits int64   `json:"forward_memo_hits"`
	WorkUnits       int64   `json:"work_units"`
	SimMinutes      float64 `json:"sim_minutes"`
	// Phases breaks the charged units down by engine phase (disassembly,
	// index-build, backslice, constprop, ...), one duration histogram per
	// phase. Informational — never gated, because the split between
	// phases can shift under deliberate recalibrations that keep the
	// total flat.
	Phases map[string]obs.HistSnapshot `json:"phase_units,omitempty"`
}

// CorpusMeta identifies the measured corpus; baselines for a different
// corpus are not comparable.
type CorpusMeta struct {
	Apps  int     `json:"apps"`
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`
}

// Report is the BENCH_search.json schema.
type Report struct {
	Corpus         CorpusMeta             `json:"corpus"`
	Backends       map[string]BackendCost `json:"backends"`
	WarmCache      BackendCost            `json:"warm_cache"` // sharded backend, pre-warmed bundle cache
	SpeedupIndexed float64                `json:"speedup_indexed"`
	SpeedupSharded float64                `json:"speedup_sharded"`
	SpeedupWarm    float64                `json:"speedup_warm"` // cold sharded vs warm bundle
	// Steal carries the heavy-tail work-stealing leg's numbers into the
	// checked-in baseline (informational — the leg's hard invariants are
	// enforced inline on every run, never against these numbers, because
	// the exact steal instants depend on goroutine scheduling).
	Steal *StealReport `json:"steal,omitempty"`
}

// StoreStats is the bundle-store counter block of BENCH_service.json.
type StoreStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
	Drops     int64 `json:"drops"`
}

// ServiceReport is the BENCH_service.json schema: the batch-reuse leg —
// the same corpus submitted twice through one scheduler with an in-memory
// bundle store. The second pass must charge zero disassembly and zero
// index builds; its detection report must be bitwise identical to a plain
// experiments.RunCorpus pass.
type ServiceReport struct {
	Corpus            CorpusMeta  `json:"corpus"`
	FirstPass         BackendCost `json:"first_pass"`
	SecondPass        BackendCost `json:"second_pass"`
	Store             StoreStats  `json:"store"`
	SpeedupBatchReuse float64     `json:"speedup_batch_reuse"`
}

// TenantReport is the BENCH_tenant.json schema: the fair-dispatch leg. A
// heavy tenant floods the queue (its many-sink outlier first), a light
// tenant submits a handful of small apps afterwards, and one worker
// drains the whole thing under weighted round-robin — the worst case for
// head-of-line blocking. The gate pins two invariants: the light tenant's
// last job is dispatched within the fairness bound (for equal weights,
// slot 2*L+1 for L light jobs — alternation, not FIFO), and the journal's
// charged control-plane work stays under 5% of the analysis work.
type TenantReport struct {
	Seed            int64    `json:"seed"`
	HeavyJobs       int      `json:"heavy_jobs"`
	LightJobs       int      `json:"light_jobs"`
	DispatchOrder   []string `json:"dispatch_order"`
	LastLightSlot   int      `json:"last_light_slot"`
	FairnessBound   int      `json:"fairness_bound"`
	HeavyUnits      int64    `json:"heavy_units"`
	LightUnits      int64    `json:"light_units"`
	AnalysisUnits   int64    `json:"analysis_units"`
	JournalRecords  int64    `json:"journal_records"`
	JournalBytes    int64    `json:"journal_bytes"`
	JournalUnits    int64    `json:"journal_units"`
	JournalOverhead float64  `json:"journal_overhead"`
}

// DeltaLeg is one mutation kind's cold-vs-incremental measurement: the
// updated app analyzed from scratch versus re-analyzed against the base
// version's bundle and report.
type DeltaLeg struct {
	Mutation        string  `json:"mutation"`
	ColdUnits       int64   `json:"cold_work_units"`
	DeltaUnits      int64   `json:"delta_work_units"`
	CostRatio       float64 `json:"cost_ratio"` // delta / cold
	SinksReused     int     `json:"sinks_reused"`
	SinksRerun      int     `json:"sinks_rerun"`
	ShardsUnchanged int     `json:"shards_unchanged"`
	ShardsChanged   int     `json:"shards_changed"`
	ReusedLines     int64   `json:"delta_reused_lines"`
}

// ShardDedup is the cross-version postings-dedup counter block of
// BENCH_delta.json, accumulated over every base/update bundle pair the
// leg stored.
type ShardDedup struct {
	Entries      int   `json:"entries"`
	Bytes        int64 `json:"bytes"`
	Puts         int64 `json:"puts"`
	Hits         int64 `json:"hits"`
	BytesDeduped int64 `json:"bytes_deduped"`
}

// DeltaApp identifies the app pair the delta leg measures.
type DeltaApp struct {
	Name   string  `json:"name"`
	SizeMB float64 `json:"size_mb"`
	Seed   int64   `json:"seed"`
	Sinks  int     `json:"sinks"`
}

// DeltaReport is the BENCH_delta.json schema: the app-update leg. For
// each mutation kind the updated app is analyzed cold and incrementally
// (base bundle + base report as the delta base); verdicts must match bit
// for bit, one-class updates must charge under 10% of cold, and the
// shard store must share unchanged postings shards across the versions.
type DeltaReport struct {
	App        DeltaApp   `json:"app"`
	Legs       []DeltaLeg `json:"legs"`
	ShardStore ShardDedup `json:"shard_store"`
}

// SettledStoreStats is the report-store counter block of
// BENCH_settled.json.
type SettledStoreStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
}

// SettledReport is the BENCH_settled.json schema: the resubmission-storm
// leg. One scheduler with a report store analyzes the corpus cold, then
// the same corpus is resubmitted StormPasses more times. The storm must
// be served entirely from the settled tier: every resubmission one O(1)
// settled lookup, zero disassembly, zero index builds, canonical report
// encodings bitwise identical to the cold pass — and the whole storm
// charging under 1% of the cold pass.
type SettledReport struct {
	Corpus         CorpusMeta        `json:"corpus"`
	StormPasses    int               `json:"storm_passes"`
	ColdPass       BackendCost       `json:"cold_pass"`
	Storm          BackendCost       `json:"storm_total"` // all resubmissions summed
	SettledLookups int64             `json:"settled_lookups"`
	Store          SettledStoreStats `json:"report_store"`
	ChargeRatio    float64           `json:"charge_ratio"`    // storm total / cold
	SpeedupSettled float64           `json:"speedup_settled"` // cold / mean storm pass
}

// FleetReport is the BENCH_fleet.json schema: the fleet-chaos leg. The
// tenant corpus runs twice through a four-node worker fleet — once
// uninterrupted (the reference) and once under a deterministic fault
// plan that kills two nodes mid-corpus, each while running a targeted
// heavy-tenant job. The gate pins three invariants: the chaos run's
// canonical per-job report union (service.EncodeReport bytes) is
// identical to the reference's, the light tenant's last first-attempt
// dispatch stays inside the 2L+1 WRR bound even while handoff
// re-dispatches compete for heavy slots, and the fleet's overhead
// account (lease-expiry detection latency + handoff + backoff) stays
// under 10% of the charged analysis work.
type FleetReport struct {
	Seed           int64   `json:"seed"`
	Nodes          int     `json:"nodes"`
	HeavyJobs      int     `json:"heavy_jobs"`
	LightJobs      int     `json:"light_jobs"`
	Plan           string  `json:"plan"`
	Killed         int     `json:"killed"`
	Survivors      int     `json:"survivors"`
	Handoffs       int64   `json:"handoffs"`
	ExpiredLeases  int64   `json:"expired_leases"`
	LostUnits      int64   `json:"lost_units"`
	OverheadUnits  int64   `json:"overhead_units"`
	AnalysisUnits  int64   `json:"analysis_units"`
	OverheadRatio  float64 `json:"overhead_ratio"`
	UnionIdentical bool    `json:"union_identical"`
	LastLightSlot  int     `json:"last_light_slot"`
	FairnessBound  int     `json:"fairness_bound"`
	JournalUnits   int64   `json:"journal_units"`
}

// StealReport is the BENCH_steal.json schema: the heavy-tail
// work-stealing leg. The appgen heavy-tail corpus (one 121-sink outlier
// dispatched first, then small apps) runs twice through a four-node
// fleet — sink-chunk stealing disabled (SinkChunk=0, the job is the
// placement unit) and enabled (the default options). With job-level
// placement the outlier's node grinds alone long after the small apps
// drain; with stealing the idle nodes take over fenced chunks of its
// sink tail. The gate pins three invariants: the steal run's canonical
// per-job report union (service.EncodeReport bytes) is identical to
// the unsplit run's, the charged makespan shrinks by at least 1.5x,
// and the steal + remote-fetch overhead stays under 10% of the charged
// analysis work.
type StealReport struct {
	Seed            int64   `json:"seed"`
	Nodes           int     `json:"nodes"`
	Apps            int     `json:"apps"`
	HeavySinks      int     `json:"heavy_sinks"`
	NoStealMakespan int64   `json:"nosteal_makespan_units"`
	StealMakespan   int64   `json:"steal_makespan_units"`
	SpeedupMakespan float64 `json:"speedup_makespan"`
	Steals          int64   `json:"steals"`
	StealVictims    int64   `json:"steal_victims"`
	StolenSinks     int64   `json:"stolen_sinks"`
	StealUnits      int64   `json:"steal_units"`
	RemoteGets      int64   `json:"remote_gets"`
	RemoteUnits     int64   `json:"remote_units"`
	AnalysisUnits   int64   `json:"analysis_units"`
	OverheadRatio   float64 `json:"steal_overhead_ratio"`
	UnionIdentical  bool    `json:"union_identical"`
	// Phases is the steal run's per-phase charged-unit breakdown — the
	// backslice histogram shows the outlier's sink tail split across
	// chunk re-anchored ranges. Informational, never gated.
	Phases map[string]obs.HistSnapshot `json:"phase_units,omitempty"`
}

// WarmReport is the BENCH_warm.json schema: the warm-path perf trajectory
// tracked in-repo. BaselineWarmUnits captures the checked-in baseline's
// warm cost at measurement time, so the speedup over the previous warm
// path (PR 2's index-only cache, initially) is recorded alongside the
// absolute numbers.
type WarmReport struct {
	Corpus            CorpusMeta  `json:"corpus"`
	ColdSharded       BackendCost `json:"cold_sharded"`
	Warm              BackendCost `json:"warm"`
	WarmParallel      BackendCost `json:"warm_parallel"`
	SpeedupWarmVsCold float64     `json:"speedup_warm_vs_cold"`
	BaselineWarmUnits int64       `json:"baseline_warm_work_units,omitempty"`
	SpeedupVsBaseline float64     `json:"speedup_vs_baseline_warm,omitempty"`
}

func main() {
	var (
		apps       = flag.Int("apps", 16, "corpus size")
		scale      = flag.Float64("scale", 0.15, "app size scale factor")
		seed       = flag.Int64("seed", 20200523, "corpus seed")
		baseline   = flag.String("baseline", "", "baseline JSON to gate against (empty = no gate)")
		out        = flag.String("out", "BENCH_search.json", "output JSON path")
		warmOut    = flag.String("warm-out", "BENCH_warm.json", "warm-path trajectory JSON path (empty = skip)")
		serviceOut = flag.String("service-out", "BENCH_service.json", "batch-reuse leg JSON path (empty = skip)")
		tenantOut  = flag.String("tenant-out", "BENCH_tenant.json", "fair-dispatch leg JSON path (empty = skip)")
		deltaOut   = flag.String("delta-out", "BENCH_delta.json", "delta-update leg JSON path (empty = skip)")
		settledOut = flag.String("settled-out", "BENCH_settled.json", "settled-storm leg JSON path (empty = skip)")
		fleetOut   = flag.String("fleet-out", "BENCH_fleet.json", "fleet-chaos leg JSON path (empty = skip)")
		stealOut   = flag.String("steal-out", "BENCH_steal.json", "heavy-tail work-stealing leg JSON path (empty = skip)")
		tolerance  = flag.Float64("tolerance", 0.10, "allowed charged-work regression fraction")
		write      = flag.Bool("write-baseline", false, "overwrite the baseline with this run's numbers")
	)
	flag.Parse()
	if err := run(*apps, *scale, *seed, *baseline, *out, *warmOut, *serviceOut, *tenantOut, *deltaOut, *settledOut, *fleetOut, *stealOut, *tolerance, *write); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(apps int, scale float64, seed int64, baselinePath, outPath, warmOutPath, serviceOutPath, tenantOutPath, deltaOutPath, settledOutPath, fleetOutPath, stealOutPath string, tolerance float64, writeBaseline bool) error {
	meta := CorpusMeta{Apps: apps, Scale: scale, Seed: seed}
	report := Report{Corpus: meta, Backends: make(map[string]BackendCost)}

	detections := make(map[string]string)
	for _, kind := range []bcsearch.BackendKind{bcsearch.BackendLinear, bcsearch.BackendIndexed, bcsearch.BackendSharded} {
		cost, det, err := measure(meta, kind, "", false)
		if err != nil {
			return err
		}
		report.Backends[kind.String()] = cost
		detections[kind.String()] = det
		fmt.Fprintf(os.Stderr, "%-16s %10d units, %9d line-scans, %9d postings\n",
			kind, cost.WorkUnits, cost.LinesScanned, cost.PostingsScanned)
	}

	// Parity matrix leg: shard-parallel lookups must not change one
	// detection verdict while their charged work is tracked like a
	// backend of its own.
	parCost, parDet, err := measure(meta, bcsearch.BackendSharded, "", true)
	if err != nil {
		return err
	}
	report.Backends["sharded-parallel"] = parCost
	fmt.Fprintf(os.Stderr, "%-16s %10d units, %d lookups fanned out\n",
		"sharded-par", parCost.WorkUnits, parCost.ParallelLookups)
	for name, det := range detections {
		if det != detections["linear"] {
			return fmt.Errorf("backend %q detection output diverges from linear", name)
		}
	}
	if parDet != detections["sharded"] {
		return fmt.Errorf("parallel lookups changed the detection output")
	}

	// Warm persistent-bundle runs: the first pass populates the cache
	// directory, the second must load every dump and index section, the
	// third re-checks the fully-warm path with parallel lookups on.
	cacheDir, err := os.MkdirTemp("", "benchgate-idx-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)
	coldSharded, _, err := measure(meta, bcsearch.BackendSharded, cacheDir, false)
	if err != nil {
		return err
	}
	warm, warmDet, err := measure(meta, bcsearch.BackendSharded, cacheDir, false)
	if err != nil {
		return err
	}
	warmPar, warmParDet, err := measure(meta, bcsearch.BackendSharded, cacheDir, true)
	if err != nil {
		return err
	}
	report.WarmCache = warm
	fmt.Fprintf(os.Stderr, "%-16s %10d units, %d index hits, %d dump hits, %d builds, %d lines disassembled\n",
		"warm", warm.WorkUnits, warm.IndexCacheHits, warm.DumpCacheHits, warm.IndexBuilds, warm.DumpLinesCold)

	lin := report.Backends["linear"].WorkUnits
	if idx := report.Backends["indexed"].WorkUnits; idx > 0 {
		report.SpeedupIndexed = float64(lin) / float64(idx)
	}
	if sh := report.Backends["sharded"].WorkUnits; sh > 0 {
		report.SpeedupSharded = float64(lin) / float64(sh)
	}
	if warm.WorkUnits > 0 {
		report.SpeedupWarm = float64(coldSharded.WorkUnits) / float64(warm.WorkUnits)
	}

	// Heavy-tail work-stealing leg. Measured before the main report is
	// marshaled so its numbers ride into BENCH_search.json and the
	// checked-in baseline; the artifact is written before the gates fire
	// so a failing run still leaves the evidence behind.
	if stealOutPath != "" {
		sr, err := measureStealTail(seed)
		if err != nil {
			return err
		}
		report.Steal = &sr
		fmt.Fprintf(os.Stderr, "%-16s makespan %d -> %d units (%.2fx), %d steals off %d victims, %d sinks moved, overhead %.2f%%\n",
			"heavy-tail", sr.NoStealMakespan, sr.StealMakespan, sr.SpeedupMakespan,
			sr.Steals, sr.StealVictims, sr.StolenSinks, 100*sr.OverheadRatio)
		sdata, err := json.MarshalIndent(sr, "", "  ")
		if err != nil {
			return err
		}
		sdata = append(sdata, '\n')
		if err := os.WriteFile(stealOutPath, sdata, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (makespan %.2fx)\n", stealOutPath, sr.SpeedupMakespan)
		if !sr.UnionIdentical {
			return fmt.Errorf("heavy-tail steal run's report union diverges from the unsplit run")
		}
		if sr.Steals == 0 {
			return fmt.Errorf("heavy-tail leg stole no chunks — sink-level stealing not engaging")
		}
		if sr.SpeedupMakespan < 1.5 {
			return fmt.Errorf("heavy-tail makespan speedup %.2fx, floor is 1.5x (%d -> %d units)",
				sr.SpeedupMakespan, sr.NoStealMakespan, sr.StealMakespan)
		}
		if sr.OverheadRatio >= 0.10 {
			return fmt.Errorf("steal overhead %.2f%% of charged analysis units, ceiling is 10%%", 100*sr.OverheadRatio)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (speedup indexed %.2fx, sharded %.2fx, warm %.2fx)\n",
		outPath, report.SpeedupIndexed, report.SpeedupSharded, report.SpeedupWarm)

	// Invariants the gate always enforces, baseline or not.
	if warm.IndexBuilds != 0 {
		return fmt.Errorf("warm run built %d indexes, want 0 (persistent cache not hitting)", warm.IndexBuilds)
	}
	if warm.DumpLinesCold != 0 {
		return fmt.Errorf("warm run disassembled %d dump lines, want 0 (bundle dump section not hitting)", warm.DumpLinesCold)
	}
	if warm.DumpCacheHits != apps {
		return fmt.Errorf("warm run loaded %d cached dumps, want %d (one per app)", warm.DumpCacheHits, apps)
	}
	if warmDet != detections["sharded"] || warmParDet != detections["sharded"] {
		return fmt.Errorf("warm bundle runs changed the detection output")
	}
	if report.SpeedupIndexed <= 1 || report.SpeedupSharded <= 1 {
		return fmt.Errorf("index speedups %.2fx/%.2fx not >1 — index backends charge more than the linear scan",
			report.SpeedupIndexed, report.SpeedupSharded)
	}
	if report.SpeedupWarm <= 1 {
		return fmt.Errorf("warm speedup %.2fx not >1 — warm bundle runs charge more than cold", report.SpeedupWarm)
	}

	// Batch-reuse leg: the same corpus submitted twice through one
	// scheduler with an in-memory bundle store. This is also the
	// scheduler-vs-RunCorpus parity diff — both passes must reproduce the
	// plain sharded detection output bit for bit.
	if serviceOutPath != "" {
		svc, firstDet, secondDet, err := measureService(meta)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%-16s %10d units cold, %10d units warm, %d store hits\n",
			"batch-reuse", svc.FirstPass.WorkUnits, svc.SecondPass.WorkUnits, svc.SecondPass.BundleStoreHits)
		if firstDet != detections["sharded"] || secondDet != detections["sharded"] {
			return fmt.Errorf("scheduler runs changed the detection output vs RunCorpus")
		}
		if svc.SecondPass.IndexBuilds != 0 {
			return fmt.Errorf("batch-reuse second pass built %d indexes, want 0 (bundle store not hitting)", svc.SecondPass.IndexBuilds)
		}
		if svc.SecondPass.DumpLinesCold != 0 {
			return fmt.Errorf("batch-reuse second pass disassembled %d lines, want 0", svc.SecondPass.DumpLinesCold)
		}
		if svc.SecondPass.BundleStoreHits != apps {
			return fmt.Errorf("batch-reuse second pass hit the store %d times, want %d (one per app)", svc.SecondPass.BundleStoreHits, apps)
		}
		if svc.SpeedupBatchReuse <= 1 {
			return fmt.Errorf("batch-reuse speedup %.2fx not >1 — store reuse charges more than cold", svc.SpeedupBatchReuse)
		}
		sdata, err := json.MarshalIndent(svc, "", "  ")
		if err != nil {
			return err
		}
		sdata = append(sdata, '\n')
		if err := os.WriteFile(serviceOutPath, sdata, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (batch reuse %.2fx)\n", serviceOutPath, svc.SpeedupBatchReuse)
	}

	// Fair-dispatch leg: a heavy tenant's backlog vs a light tenant's
	// trickle through one journaled scheduler. Enforces the fairness
	// bound and the journal-overhead ceiling on every run.
	if tenantOutPath != "" {
		tr, err := measureFairDispatch(seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%-16s light done by slot %d/%d (bound %d), journal %.2f%% of %d units\n",
			"fair-dispatch", tr.LastLightSlot, len(tr.DispatchOrder), tr.FairnessBound,
			100*tr.JournalOverhead, tr.AnalysisUnits)
		if tr.LastLightSlot > tr.FairnessBound {
			return fmt.Errorf("light tenant's last job dispatched at slot %d, fairness bound is %d — heavy tenant head-of-line-blocks",
				tr.LastLightSlot, tr.FairnessBound)
		}
		if tr.JournalOverhead >= 0.05 {
			return fmt.Errorf("journal overhead %.2f%% of charged units, ceiling is 5%%", 100*tr.JournalOverhead)
		}
		tdata, err := json.MarshalIndent(tr, "", "  ")
		if err != nil {
			return err
		}
		tdata = append(tdata, '\n')
		if err := os.WriteFile(tenantOutPath, tdata, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", tenantOutPath)
	}

	// Fleet-chaos leg: the tenant corpus through a 4-node fleet, with and
	// without a deterministic fault plan killing two nodes mid-corpus.
	// Enforces report-union byte parity, the fairness bound under
	// re-dispatch pressure and the 10% overhead ceiling on every run.
	if fleetOutPath != "" {
		fr, err := measureFleetChaos(seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%-16s %d/%d nodes killed, %d handoffs, overhead %.2f%% of %d units, light slot %d/%d\n",
			"fleet-chaos", fr.Killed, fr.Nodes, fr.Handoffs,
			100*fr.OverheadRatio, fr.AnalysisUnits, fr.LastLightSlot, fr.FairnessBound)
		if !fr.UnionIdentical {
			return fmt.Errorf("fleet chaos run's report union diverges from the uninterrupted run")
		}
		if fr.Killed != 2 {
			return fmt.Errorf("fault plan %q killed %d nodes, want 2", fr.Plan, fr.Killed)
		}
		if fr.Handoffs != 2 {
			return fmt.Errorf("fleet chaos run handed off %d jobs, want 2 (one per killed node)", fr.Handoffs)
		}
		if fr.LastLightSlot > fr.FairnessBound {
			return fmt.Errorf("light tenant's last job dispatched at fleet slot %d, fairness bound is %d — handoffs starve the light tenant",
				fr.LastLightSlot, fr.FairnessBound)
		}
		if fr.OverheadRatio >= 0.10 {
			return fmt.Errorf("fleet fault overhead %.2f%% of charged analysis units, ceiling is 10%%", 100*fr.OverheadRatio)
		}
		fdata, err := json.MarshalIndent(fr, "", "  ")
		if err != nil {
			return err
		}
		fdata = append(fdata, '\n')
		if err := os.WriteFile(fleetOutPath, fdata, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", fleetOutPath)
	}

	// Delta-update leg: each mutation kind's updated app analyzed cold
	// and incrementally against the base version's bundle + report. The
	// gate pins verdict parity for every kind, the <10% charge ceiling
	// for one-class updates, and cross-version shard dedup.
	if deltaOutPath != "" {
		dr, err := measureDelta(seed)
		if err != nil {
			return err
		}
		for _, leg := range dr.Legs {
			fmt.Fprintf(os.Stderr, "%-16s %10d units cold, %10d units delta (%.1f%%), %d/%d sinks reused, %d/%d shards unchanged\n",
				"delta:"+leg.Mutation, leg.ColdUnits, leg.DeltaUnits, 100*leg.CostRatio,
				leg.SinksReused, leg.SinksReused+leg.SinksRerun,
				leg.ShardsUnchanged, leg.ShardsUnchanged+leg.ShardsChanged)
			if leg.SinksReused == 0 {
				return fmt.Errorf("delta leg %q reused no sinks — incremental path not engaging", leg.Mutation)
			}
			if leg.DeltaUnits >= leg.ColdUnits {
				return fmt.Errorf("delta leg %q charged %d units, cold %d — incremental run costs more than cold",
					leg.Mutation, leg.DeltaUnits, leg.ColdUnits)
			}
			oneClass := leg.Mutation != appgen.MutateNewFlow.String()
			if oneClass && 10*leg.DeltaUnits >= leg.ColdUnits {
				return fmt.Errorf("delta leg %q charged %d units, over 10%% of the %d-unit cold run",
					leg.Mutation, leg.DeltaUnits, leg.ColdUnits)
			}
		}
		if dr.ShardStore.BytesDeduped == 0 {
			return fmt.Errorf("delta leg deduped no postings bytes across versions — shard store not sharing")
		}
		ddata, err := json.MarshalIndent(dr, "", "  ")
		if err != nil {
			return err
		}
		ddata = append(ddata, '\n')
		if err := os.WriteFile(deltaOutPath, ddata, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes postings deduped across versions)\n",
			deltaOutPath, dr.ShardStore.BytesDeduped)
	}

	// Settled-storm leg: the corpus analyzed cold through a scheduler with
	// a report store, then resubmitted ten more times. The storm must ride
	// the settled tier end to end — O(1) lookups, bitwise-identical
	// canonical reports — and charge under 1% of the cold pass.
	if settledOutPath != "" {
		const stormPasses = 10
		sr, coldDet, stormDet, err := measureSettledStorm(meta, stormPasses)
		if err != nil {
			return err
		}
		if coldDet != detections["sharded"] || stormDet != detections["sharded"] {
			return fmt.Errorf("settled-storm leg changed the detection output vs RunCorpus")
		}
		fmt.Fprintf(os.Stderr, "%-16s %10d units cold, %10d units for %d storm passes (%.3f%%), %d settled lookups\n",
			"settled-storm", sr.ColdPass.WorkUnits, sr.Storm.WorkUnits, sr.StormPasses,
			100*sr.ChargeRatio, sr.SettledLookups)
		if sr.Storm.IndexBuilds != 0 {
			return fmt.Errorf("settled storm built %d indexes, want 0 (report store not serving)", sr.Storm.IndexBuilds)
		}
		if sr.Storm.DumpLinesCold != 0 {
			return fmt.Errorf("settled storm disassembled %d dump lines, want 0", sr.Storm.DumpLinesCold)
		}
		if want := int64(apps) * int64(stormPasses); sr.SettledLookups != want {
			return fmt.Errorf("settled storm charged %d settled lookups, want %d (one per resubmission)",
				sr.SettledLookups, want)
		}
		if 100*sr.Storm.WorkUnits >= sr.ColdPass.WorkUnits {
			return fmt.Errorf("settled storm charged %d units, over 1%% of the %d-unit cold pass",
				sr.Storm.WorkUnits, sr.ColdPass.WorkUnits)
		}
		sdata, err := json.MarshalIndent(sr, "", "  ")
		if err != nil {
			return err
		}
		sdata = append(sdata, '\n')
		if err := os.WriteFile(settledOutPath, sdata, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (settled serving %.0fx cheaper per pass)\n",
			settledOutPath, sr.SpeedupSettled)
	}

	// The warm-path trajectory artifact. The baseline's warm cost is read
	// before any refresh, so the recorded speedup is against the previous
	// PR's warm path.
	if warmOutPath != "" {
		wr := WarmReport{
			Corpus:            meta,
			ColdSharded:       coldSharded,
			Warm:              warm,
			WarmParallel:      warmPar,
			SpeedupWarmVsCold: report.SpeedupWarm,
		}
		if baselinePath != "" {
			if base, err := readBaseline(baselinePath); err == nil && base.WarmCache.WorkUnits > 0 {
				wr.BaselineWarmUnits = base.WarmCache.WorkUnits
				wr.SpeedupVsBaseline = float64(base.WarmCache.WorkUnits) / float64(warm.WorkUnits)
			}
		}
		wdata, err := json.MarshalIndent(wr, "", "  ")
		if err != nil {
			return err
		}
		wdata = append(wdata, '\n')
		if err := os.WriteFile(warmOutPath, wdata, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (warm vs cold %.2fx, vs baseline warm %.2fx)\n",
			warmOutPath, wr.SpeedupWarmVsCold, wr.SpeedupVsBaseline)
	}

	if writeBaseline {
		if baselinePath == "" {
			return fmt.Errorf("-write-baseline needs -baseline PATH")
		}
		if err := os.WriteFile(baselinePath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "baseline %s refreshed\n", baselinePath)
		return nil
	}
	if baselinePath == "" {
		return nil
	}
	return gate(report, baselinePath, tolerance)
}

// phaseRecorder folds core.Options.PhaseSpan callbacks into per-phase
// duration histograms. Recording is pure observation — PhaseSpan is
// fingerprint-neutral and charges nothing — and the power-of-two
// histograms are order-independent, so parallel workers snapshot
// identically for a given corpus.
type phaseRecorder struct {
	mu    sync.Mutex
	hists map[string]*obs.Histogram
}

// install points o.PhaseSpan at the recorder.
func (p *phaseRecorder) install(o *core.Options) {
	o.PhaseSpan = func(phase string, _ int, start, end int64) {
		p.mu.Lock()
		if p.hists == nil {
			p.hists = make(map[string]*obs.Histogram)
		}
		h := p.hists[phase]
		if h == nil {
			h = &obs.Histogram{}
			p.hists[phase] = h
		}
		p.mu.Unlock()
		h.Observe(end - start)
	}
}

// snapshot returns the recorded histograms keyed by phase name (nil when
// nothing fired, keeping the JSON field omitted).
func (p *phaseRecorder) snapshot() map[string]obs.HistSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.hists) == 0 {
		return nil
	}
	out := make(map[string]obs.HistSnapshot, len(p.hists))
	for name, h := range p.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// measure runs BackDroid over the corpus with the given backend and sums
// the charged search work; the returned string is a deterministic
// detection summary (app, sink, verdict, values) used for parity checks.
func measure(meta CorpusMeta, kind bcsearch.BackendKind, cacheDir string, parallelLookups bool) (BackendCost, string, error) {
	opts := core.DefaultOptions()
	opts.SearchBackend = kind
	opts.ParallelLookups = parallelLookups
	var rec phaseRecorder
	rec.install(&opts)
	cost, det, err := measureWith(meta, experiments.RunConfig{
		RunBackDroid:     true,
		BackDroidOptions: &opts,
		Workers:          runtime.NumCPU(),
		IndexCacheDir:    cacheDir,
	})
	cost.Phases = rec.snapshot()
	return cost, det, err
}

// measureWith runs one corpus pass under the given config (possibly
// through a shared scheduler) and sums its charged work.
func measureWith(meta CorpusMeta, cfg experiments.RunConfig) (BackendCost, string, error) {
	run, err := experiments.RunCorpus(
		appgen.CorpusOptions{Apps: meta.Apps, Seed: meta.Seed, SizeScale: meta.Scale}, cfg)
	if err != nil {
		return BackendCost{}, "", err
	}
	var c BackendCost
	var det strings.Builder
	for _, a := range run.Apps {
		s := a.BackDroid.Stats
		c.LinesScanned += s.Search.LinesScanned
		c.PostingsScanned += s.Search.PostingsScanned
		c.MergedPostings += s.Search.MergedPostings
		c.IndexBuilds += s.Search.IndexBuilds
		c.IndexCacheHits += s.Search.IndexCacheHits
		c.DumpCacheHits += s.DumpCacheHits
		c.BundleStoreHits += s.BundleStoreHits
		c.DumpLinesCold += s.DumpLinesDisassembled
		c.ParallelLookups += s.Search.ParallelLookups
		c.ForwardMemoHits += s.ForwardMemoHits
		c.WorkUnits += s.WorkUnits
		c.SimMinutes += s.SimMinutes
		fmt.Fprintf(&det, "== %s ==\n", a.BackDroid.App)
		for _, sk := range a.BackDroid.Sinks {
			fmt.Fprintf(&det, "%s r=%v i=%v %v\n", sk.Call, sk.Reachable, sk.Insecure, sk.Values)
		}
	}
	return c, det.String(), nil
}

// measureService is the batch-reuse leg: one scheduler with an unbounded
// in-memory bundle store, the same corpus submitted twice through it. The
// first pass is cold (every fingerprint misses the store and is built
// once); the second must be fully warm — zero disassembly, zero index
// builds, every app a store hit — with detection output identical to the
// plain RunCorpus path.
func measureService(meta CorpusMeta) (ServiceReport, string, string, error) {
	opts := core.DefaultOptions()
	opts.SearchBackend = bcsearch.BackendSharded
	store := service.NewBundleStore(0)
	sched := service.New(service.Config{
		Workers: runtime.NumCPU(),
		Options: &opts,
		Store:   store,
	})
	defer sched.Close()

	cfg := experiments.RunConfig{RunBackDroid: true, Scheduler: sched}
	first, firstDet, err := measureWith(meta, cfg)
	if err != nil {
		return ServiceReport{}, "", "", err
	}
	second, secondDet, err := measureWith(meta, cfg)
	if err != nil {
		return ServiceReport{}, "", "", err
	}
	rep := ServiceReport{Corpus: meta, FirstPass: first, SecondPass: second}
	st := store.Stats()
	rep.Store = StoreStats{
		Entries: st.Entries, Bytes: st.Bytes, Hits: st.Hits,
		Misses: st.Misses, Puts: st.Puts, Evictions: st.Evictions,
		Drops: st.Drops,
	}
	if second.WorkUnits > 0 {
		rep.SpeedupBatchReuse = float64(first.WorkUnits) / float64(second.WorkUnits)
	}
	return rep, firstDet, secondDet, nil
}

// measureSettledStorm is the resubmission-storm leg: one scheduler with
// an unbounded report store, the corpus analyzed cold once and then
// resubmitted passes more times. Every storm serving must carry the
// bitwise-identical canonical encoding of the cold pass's report (the
// content-address contract), and the only charged work in the storm is
// the O(1) settled lookup per resubmission. The returned strings are the
// cold pass's detection summary and the last storm pass's, for the
// RunCorpus parity diff in run().
func measureSettledStorm(meta CorpusMeta, passes int) (SettledReport, string, string, error) {
	opts := core.DefaultOptions()
	opts.SearchBackend = bcsearch.BackendSharded
	reports := service.NewReportStore(0)
	sched := service.New(service.Config{
		Workers: runtime.NumCPU(),
		Options: &opts,
		Reports: reports,
	})
	defer sched.Close()

	// onePass runs the corpus through the shared scheduler and returns the
	// summed cost, the detection summary, the settled-lookup count and the
	// canonical encoding of every app's report.
	onePass := func() (BackendCost, string, int64, map[string][]byte, error) {
		run, err := experiments.RunCorpus(
			appgen.CorpusOptions{Apps: meta.Apps, Seed: meta.Seed, SizeScale: meta.Scale},
			experiments.RunConfig{RunBackDroid: true, Scheduler: sched})
		if err != nil {
			return BackendCost{}, "", 0, nil, err
		}
		var c BackendCost
		var lookups int64
		var det strings.Builder
		enc := make(map[string][]byte, len(run.Apps))
		for _, a := range run.Apps {
			s := a.BackDroid.Stats
			c.LinesScanned += s.Search.LinesScanned
			c.PostingsScanned += s.Search.PostingsScanned
			c.IndexBuilds += s.Search.IndexBuilds
			c.DumpLinesCold += s.DumpLinesDisassembled
			c.WorkUnits += s.WorkUnits
			c.SimMinutes += s.SimMinutes
			lookups += int64(s.SettledLookups)
			enc[a.BackDroid.App] = service.EncodeReport(a.BackDroid)
			fmt.Fprintf(&det, "== %s ==\n", a.BackDroid.App)
			for _, sk := range a.BackDroid.Sinks {
				fmt.Fprintf(&det, "%s r=%v i=%v %v\n", sk.Call, sk.Reachable, sk.Insecure, sk.Values)
			}
		}
		return c, det.String(), lookups, enc, nil
	}

	cold, coldDet, coldLookups, coldEnc, err := onePass()
	if err != nil {
		return SettledReport{}, "", "", err
	}
	if coldLookups != 0 {
		return SettledReport{}, "", "", fmt.Errorf("cold pass charged %d settled lookups, want 0", coldLookups)
	}
	rep := SettledReport{Corpus: meta, StormPasses: passes, ColdPass: cold}
	var stormDet string
	for p := 0; p < passes; p++ {
		cost, det, lookups, enc, err := onePass()
		if err != nil {
			return SettledReport{}, "", "", err
		}
		for app, want := range coldEnc {
			if !bytes.Equal(enc[app], want) {
				return SettledReport{}, "", "", fmt.Errorf(
					"storm pass %d: canonical encoding of %s diverges from the cold pass", p+1, app)
			}
		}
		rep.Storm.LinesScanned += cost.LinesScanned
		rep.Storm.PostingsScanned += cost.PostingsScanned
		rep.Storm.IndexBuilds += cost.IndexBuilds
		rep.Storm.DumpLinesCold += cost.DumpLinesCold
		rep.Storm.WorkUnits += cost.WorkUnits
		rep.Storm.SimMinutes += cost.SimMinutes
		rep.SettledLookups += lookups
		stormDet = det
	}
	st := reports.Stats()
	rep.Store = SettledStoreStats{
		Entries: st.Entries, Bytes: st.Bytes, Hits: st.Hits,
		Misses: st.Misses, Puts: st.Puts, Evictions: st.Evictions,
	}
	if cold.WorkUnits > 0 {
		rep.ChargeRatio = float64(rep.Storm.WorkUnits) / float64(cold.WorkUnits)
	}
	if rep.Storm.WorkUnits > 0 {
		rep.SpeedupSettled = float64(cold.WorkUnits) * float64(passes) / float64(rep.Storm.WorkUnits)
	}
	return rep, coldDet, stormDet, nil
}

// measureFairDispatch runs the two-tenant interleave: tenant "heavy"
// submits its full mixed workload (many-sink outlier first), tenant
// "light" its small apps afterwards, one journaled single-worker
// scheduler drains both. A gate job pins the worker until every submit
// landed, so the dispatch sequence is the pure WRR order of the queue
// contents — deterministic for a given seed.
func measureFairDispatch(seed int64) (TenantReport, error) {
	loads := appgen.TenantWorkloads(appgen.TenantWorkloadOptions{
		Tenants: 2, SmallApps: 4, Seed: seed, HeavySinks: 40,
	})
	heavySpecs := loads[0].Specs     // outlier + small apps
	lightSpecs := loads[1].Specs[1:] // small apps only

	jdir, err := os.MkdirTemp("", "benchgate-journal-*")
	if err != nil {
		return TenantReport{}, err
	}
	defer os.RemoveAll(jdir)
	jnl, _, err := journal.Open(jdir)
	if err != nil {
		return TenantReport{}, err
	}
	defer jnl.Close()

	events := make(chan service.Event, 64)
	var order []string
	var drain sync.WaitGroup
	drain.Add(1)
	go func() {
		defer drain.Done()
		for ev := range events {
			if ev.Kind == service.EventStarted && ev.Name != "gate" {
				order = append(order, ev.Name)
			}
		}
	}()

	opts := core.DefaultOptions()
	opts.SearchBackend = bcsearch.BackendSharded
	sched := service.New(service.Config{
		Workers: 1, QueueDepth: 64,
		Options: &opts,
		Journal: jnl,
		Events:  events,
	})

	gate := make(chan struct{})
	gateID, err := sched.Submit(service.Job{
		Name:   "gate",
		Tenant: "zz-gate", // sorts last: never steals a WRR slot from real work
		Source: func() (*apk.App, error) {
			<-gate
			app, _, err := appgen.Generate(appgen.Spec{
				Name: "com.gate.noop", Seed: seed, SizeMB: 0.2,
				Sinks: []appgen.SinkSpec{{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB}},
			})
			return app, err
		},
		RunBackDroid: true,
	})
	if err != nil {
		return TenantReport{}, err
	}
	submit := func(tenant string, specs []appgen.Spec) ([]service.JobID, error) {
		ids := make([]service.JobID, 0, len(specs))
		for _, spec := range specs {
			spec := spec
			id, err := sched.Submit(service.Job{
				Name: tenant + ":" + spec.Name, Tenant: tenant,
				Source: func() (*apk.App, error) {
					app, _, err := appgen.Generate(spec)
					return app, err
				},
				RunBackDroid: true,
			})
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		return ids, nil
	}
	heavyIDs, err := submit("heavy", heavySpecs)
	if err != nil {
		return TenantReport{}, err
	}
	lightIDs, err := submit("light", lightSpecs)
	if err != nil {
		return TenantReport{}, err
	}
	close(gate)

	tr := TenantReport{
		Seed:      seed,
		HeavyJobs: len(heavyIDs),
		LightJobs: len(lightIDs),
	}
	if _, err := sched.Wait(gateID); err != nil {
		return TenantReport{}, err
	}
	for _, id := range heavyIDs {
		res, err := sched.Wait(id)
		if err != nil {
			return TenantReport{}, err
		}
		tr.HeavyUnits += res.BackDroid.Stats.WorkUnits
	}
	for _, id := range lightIDs {
		res, err := sched.Wait(id)
		if err != nil {
			return TenantReport{}, err
		}
		tr.LightUnits += res.BackDroid.Stats.WorkUnits
	}
	ss := sched.Stats()
	sched.Close()
	close(events)
	drain.Wait()

	tr.DispatchOrder = order
	// Equal weights alternate once both tenants queue: light job i lands
	// by slot 2i, +1 slack for the round the cursor starts in.
	tr.FairnessBound = 2*len(lightIDs) + 1
	for slot, name := range order {
		if strings.HasPrefix(name, "light:") {
			tr.LastLightSlot = slot + 1
		}
	}
	tr.AnalysisUnits = tr.HeavyUnits + tr.LightUnits
	tr.JournalUnits = ss.JournalUnits
	js := jnl.Stats()
	tr.JournalRecords = js.Records
	tr.JournalBytes = js.Bytes
	if tr.AnalysisUnits > 0 {
		tr.JournalOverhead = float64(tr.JournalUnits) / float64(tr.AnalysisUnits)
	}
	return tr, nil
}

// fleetRunOutcome is one fleet corpus pass: the canonical per-job report
// encodings, the charged analysis work and the fleet's resilience
// counters.
type fleetRunOutcome struct {
	union         map[string][]byte // job name -> service.EncodeReport bytes
	analysisUnits int64
	lastLightSlot int
	stats         *service.FleetStats
	journalUnits  int64
}

// fleetCorpusRun drives the heavy+light tenant corpus through a fleet of
// nodes under the given fault plan (nil = uninterrupted reference). Every
// node is first parked on a blocking gate job so the whole corpus queues
// before the first real WRR pop — the dispatch sequence numbers are then
// a pure function of the queue contents, exactly like the single-worker
// fair-dispatch leg, and the light tenant's slots are comparable across
// runs even though four nodes pull concurrently.
func fleetCorpusRun(seed int64, nodes int, heavy, light []appgen.Spec, plan *faultinject.Plan) (fleetRunOutcome, error) {
	out := fleetRunOutcome{union: make(map[string][]byte, len(heavy)+len(light))}
	jdir, err := os.MkdirTemp("", "benchgate-fleet-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(jdir)
	jnl, _, err := journal.Open(jdir)
	if err != nil {
		return out, err
	}
	defer jnl.Close()

	events := make(chan service.Event, 256)
	var maxLightSeq int64
	var drain sync.WaitGroup
	drain.Add(1)
	go func() {
		defer drain.Done()
		for ev := range events {
			// First-attempt dispatches only: a handoff re-dispatch is
			// recovery, not a fresh slot the light tenant competes for.
			if ev.Kind == service.EventStarted && ev.Attempt == 1 &&
				strings.HasPrefix(ev.Name, "light:") && ev.Seq > maxLightSeq {
				maxLightSeq = ev.Seq
			}
		}
	}()

	opts := core.DefaultOptions()
	opts.SearchBackend = bcsearch.BackendSharded
	sched := service.New(service.Config{
		Nodes: nodes, NodeStoreBudget: 0, Faults: plan,
		QueueDepth: 64,
		Options:    &opts,
		Journal:    jnl,
		Events:     events,
	})

	// Park every node on a gate job (gates take dispatch slots 1..nodes).
	parked := make(chan struct{}, nodes)
	gate := make(chan struct{})
	gateIDs := make([]service.JobID, 0, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		id, err := sched.Submit(service.Job{
			Name: fmt.Sprintf("gate%d", i), Tenant: "zz-gate",
			Source: func() (*apk.App, error) {
				parked <- struct{}{}
				<-gate
				app, _, err := appgen.Generate(appgen.Spec{
					Name: fmt.Sprintf("com.gate.noop%d", i), Seed: seed + int64(i), SizeMB: 0.2,
					Sinks: []appgen.SinkSpec{{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB}},
				})
				return app, err
			},
			RunBackDroid: true,
		})
		if err != nil {
			return out, err
		}
		gateIDs = append(gateIDs, id)
	}
	for i := 0; i < nodes; i++ {
		<-parked
	}

	submit := func(tenant string, specs []appgen.Spec) ([]service.JobID, []string, error) {
		ids := make([]service.JobID, 0, len(specs))
		names := make([]string, 0, len(specs))
		for _, spec := range specs {
			spec := spec
			name := tenant + ":" + spec.Name
			id, err := sched.Submit(service.Job{
				Name: name, Tenant: tenant,
				Source: func() (*apk.App, error) {
					app, _, err := appgen.Generate(spec)
					return app, err
				},
				RunBackDroid: true,
			})
			if err != nil {
				return nil, nil, err
			}
			ids = append(ids, id)
			names = append(names, name)
		}
		return ids, names, nil
	}
	heavyIDs, heavyNames, err := submit("heavy", heavy)
	if err != nil {
		return out, err
	}
	lightIDs, lightNames, err := submit("light", light)
	if err != nil {
		return out, err
	}
	close(gate)

	wait := func(ids []service.JobID, names []string) error {
		for i, id := range ids {
			res, err := sched.Wait(id)
			if err != nil {
				return fmt.Errorf("fleet job %s: %w", names[i], err)
			}
			out.analysisUnits += res.BackDroid.Stats.WorkUnits
			out.union[names[i]] = service.EncodeReport(res.BackDroid)
		}
		return nil
	}
	if err := wait(heavyIDs, heavyNames); err != nil {
		return out, err
	}
	if err := wait(lightIDs, lightNames); err != nil {
		return out, err
	}
	for _, id := range gateIDs {
		if _, err := sched.Wait(id); err != nil {
			return out, err
		}
	}
	ss := sched.Stats()
	out.stats = sched.FleetStats()
	sched.Close()
	close(events)
	drain.Wait()
	out.journalUnits = ss.JournalUnits
	out.lastLightSlot = int(maxLightSeq) - nodes
	return out, nil
}

// measureFleetChaos is the fleet-chaos leg: the tenant corpus through a
// four-node fleet, uninterrupted and under a fault plan that kills the
// node running the heavy tenant's outlier and the node running one of
// its small apps, each 64 charged units into the attempt. Both kills
// expire a lease, journal a handoff and re-dispatch onto a surviving
// node; the leg then compares the two runs' canonical report unions
// byte for byte.
func measureFleetChaos(seed int64) (FleetReport, error) {
	const nodes = 4
	loads := appgen.TenantWorkloads(appgen.TenantWorkloadOptions{
		Tenants: 2, SmallApps: 4, Seed: seed, HeavySinks: 40,
	})
	heavySpecs := loads[0].Specs     // outlier + small apps
	lightSpecs := loads[1].Specs[1:] // small apps only

	plan := faultinject.New(
		faultinject.Fault{Kind: faultinject.KillJob, Job: "heavy:" + heavySpecs[0].Name, AtUnit: 64},
		faultinject.Fault{Kind: faultinject.KillJob, Job: "heavy:" + heavySpecs[2].Name, AtUnit: 64},
	)
	fr := FleetReport{
		Seed: seed, Nodes: nodes, Plan: plan.String(),
		HeavyJobs: len(heavySpecs), LightJobs: len(lightSpecs),
		FairnessBound: 2*len(lightSpecs) + 1,
	}

	ref, err := fleetCorpusRun(seed, nodes, heavySpecs, lightSpecs, nil)
	if err != nil {
		return fr, err
	}
	chaos, err := fleetCorpusRun(seed, nodes, heavySpecs, lightSpecs, plan)
	if err != nil {
		return fr, err
	}

	fr.UnionIdentical = len(chaos.union) == len(ref.union)
	for name, enc := range ref.union {
		if !bytes.Equal(chaos.union[name], enc) {
			fr.UnionIdentical = false
		}
	}
	fs := chaos.stats
	fr.Killed = fs.Killed
	fr.Survivors = fs.Live
	fr.Handoffs = fs.Handoffs
	fr.ExpiredLeases = fs.ExpiredLeases
	fr.LostUnits = fs.LostUnits
	fr.OverheadUnits = fs.OverheadUnits
	fr.AnalysisUnits = chaos.analysisUnits
	if fr.AnalysisUnits > 0 {
		fr.OverheadRatio = float64(fr.OverheadUnits) / float64(fr.AnalysisUnits)
	}
	fr.LastLightSlot = chaos.lastLightSlot
	fr.JournalUnits = chaos.journalUnits
	return fr, nil
}

// stealTailRun drives the heavy-tail corpus through a fleet once. The
// outlier is submitted first — the worst case for job-level placement:
// its node commits to the whole sink tail before the small apps even
// queue. Returns the canonical per-job report encodings, the summed
// charged analysis work and the fleet counters.
func stealTailRun(nodes int, specs []appgen.Spec, steal bool, rec *phaseRecorder) (map[string][]byte, int64, *service.FleetStats, error) {
	opts := core.DefaultOptions()
	opts.SearchBackend = bcsearch.BackendSharded
	if !steal {
		opts.SinkChunk = 0 // job-level placement: the outlier is unsplittable
	}
	if rec != nil {
		rec.install(&opts)
	}
	sched := service.New(service.Config{
		Nodes: nodes, NodeStoreBudget: 0,
		QueueDepth: 2 * len(specs),
		Options:    &opts,
	})
	ids := make([]service.JobID, 0, len(specs))
	for _, spec := range specs {
		spec := spec
		id, err := sched.Submit(service.Job{
			Name: spec.Name,
			Source: func() (*apk.App, error) {
				app, _, err := appgen.Generate(spec)
				return app, err
			},
			RunBackDroid: true,
		})
		if err != nil {
			sched.Close()
			return nil, 0, nil, err
		}
		ids = append(ids, id)
	}
	union := make(map[string][]byte, len(specs))
	var analysisUnits int64
	for i, id := range ids {
		res, err := sched.Wait(id)
		if err != nil {
			sched.Close()
			return nil, 0, nil, fmt.Errorf("heavy-tail job %s: %w", specs[i].Name, err)
		}
		analysisUnits += res.BackDroid.Stats.WorkUnits
		union[res.Name] = service.EncodeReport(res.BackDroid)
	}
	sched.Close()
	return union, analysisUnits, sched.FleetStats(), nil
}

// measureStealTail is the heavy-tail work-stealing leg: the appgen
// heavy-tail corpus (one 121-sink outlier first, then small apps)
// through a four-node fleet with sink-chunk stealing off and on. The
// charged makespan — the busiest node's odometer — is the comparison:
// identical total work, redistributed across the idle tail.
func measureStealTail(seed int64) (StealReport, error) {
	const nodes = 4
	specs := appgen.HeavyTailCorpus(appgen.HeavyTailOptions{Seed: seed})
	sr := StealReport{
		Seed: seed, Nodes: nodes,
		Apps: len(specs), HeavySinks: len(specs[0].Sinks),
	}

	baseUnion, _, baseStats, err := stealTailRun(nodes, specs, false, nil)
	if err != nil {
		return sr, err
	}
	if baseStats.Steals != 0 {
		return sr, fmt.Errorf("no-steal reference run stole %d chunks", baseStats.Steals)
	}
	var rec phaseRecorder
	union, analysisUnits, stats, err := stealTailRun(nodes, specs, true, &rec)
	if err != nil {
		return sr, err
	}
	sr.Phases = rec.snapshot()
	if stats.Handoffs != 0 || stats.Killed != 0 {
		return sr, fmt.Errorf("undisturbed heavy-tail run saw failures: %d handoffs, %d nodes killed",
			stats.Handoffs, stats.Killed)
	}

	sr.UnionIdentical = len(union) == len(baseUnion)
	for name, enc := range baseUnion {
		if !bytes.Equal(union[name], enc) {
			sr.UnionIdentical = false
		}
	}
	sr.NoStealMakespan = baseStats.MakespanUnits
	sr.StealMakespan = stats.MakespanUnits
	if sr.StealMakespan > 0 {
		sr.SpeedupMakespan = float64(sr.NoStealMakespan) / float64(sr.StealMakespan)
	}
	sr.Steals = stats.Steals
	sr.StealVictims = stats.StealVictims
	sr.StolenSinks = stats.StolenSinks
	sr.StealUnits = stats.StealUnits
	sr.RemoteGets = stats.RemoteGets
	sr.RemoteUnits = stats.RemoteUnits
	sr.AnalysisUnits = analysisUnits
	if analysisUnits > 0 {
		// Everything stealing adds on top of the analysis itself: the
		// per-steal coordination charge plus the stolen chunks' remote
		// bundle fetches.
		sr.OverheadRatio = float64(stats.StealUnits+stats.RemoteUnits) / float64(analysisUnits)
	}
	return sr, nil
}

// measureDelta is the delta-update leg: one moderately sized app and its
// three mutation kinds. Per kind, the updated app is analyzed cold in a
// fresh store (the reference) and incrementally in the base version's
// store with the base bundle + report as the delta base. The chain store
// carries a shared shard store, so every base/update pair also exercises
// the cross-version postings dedup. Fails when any incremental run's
// detection output diverges from its cold reference.
func measureDelta(seed int64) (DeltaReport, error) {
	spec := appgen.Spec{
		Name:   "com.bench.delta",
		Seed:   seed,
		SizeMB: 4,
		Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowThread, Rule: android.RuleSSLAllowAll, Insecure: true},
			{Flow: appgen.FlowICC, Rule: android.RuleCryptoECB},
			{Flow: appgen.FlowClinit, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowCallback, Rule: android.RuleSSLAllowAll},
		},
	}
	rep := DeltaReport{App: DeltaApp{Name: spec.Name, SizeMB: spec.SizeMB, Seed: seed, Sinks: len(spec.Sinks)}}

	analyze := func(app *apk.App, store *service.BundleStore, from *core.DeltaBase) (*core.Report, error) {
		opts := core.DefaultOptions()
		opts.SearchBackend = bcsearch.BackendSharded
		opts.Bundles = store
		opts.DeltaFrom = from
		e, err := core.New(app, opts)
		if err != nil {
			return nil, err
		}
		return e.Analyze()
	}
	detOf := func(r *core.Report) string {
		var b strings.Builder
		for _, sk := range r.Sinks {
			fmt.Fprintf(&b, "%s r=%v i=%v %v\n", sk.Call, sk.Reachable, sk.Insecure, sk.Values)
		}
		return b.String()
	}

	shards := service.NewShardStore()
	for _, m := range appgen.Mutations() {
		upd, _, err := appgen.GenerateUpdate(appgen.AppUpdateSpec{
			Base: spec, Mutation: m, TargetSink: 0, Seed: seed + 1,
		})
		if err != nil {
			return rep, err
		}

		// Cold reference: the update analyzed from scratch, own store so
		// nothing warms it.
		cold, err := analyze(upd, service.NewBundleStore(0), nil)
		if err != nil {
			return rep, err
		}

		// Incremental chain: base populates the store, then the update
		// re-analyzes against the base bundle + report.
		base, _, err := appgen.Generate(spec)
		if err != nil {
			return rep, err
		}
		store := service.NewBundleStore(0)
		store.AttachShardStore(shards)
		baseRep, err := analyze(base, store, nil)
		if err != nil {
			return rep, err
		}
		fp := dexdump.AppFingerprint(base.Dexes)
		bundle, ok := store.GetBundle(fp)
		if !ok {
			return rep, fmt.Errorf("delta leg %q: base bundle missing from store", m)
		}
		delta, err := analyze(upd, store, &core.DeltaBase{Fingerprint: fp, Bundle: bundle, Report: baseRep})
		if err != nil {
			return rep, err
		}
		if detOf(delta) != detOf(cold) {
			return rep, fmt.Errorf("delta leg %q: incremental detection output diverges from cold:\n%svs\n%s",
				m, detOf(delta), detOf(cold))
		}

		ds, cs := delta.Stats, cold.Stats
		leg := DeltaLeg{
			Mutation:        m.String(),
			ColdUnits:       cs.WorkUnits,
			DeltaUnits:      ds.WorkUnits,
			SinksReused:     ds.SinksReused,
			SinksRerun:      ds.SinksRerun,
			ShardsUnchanged: ds.ShardsUnchanged,
			ShardsChanged:   ds.ShardsChanged,
			ReusedLines:     ds.DeltaReusedLines,
		}
		if cs.WorkUnits > 0 {
			leg.CostRatio = float64(ds.WorkUnits) / float64(cs.WorkUnits)
		}
		rep.Legs = append(rep.Legs, leg)
	}
	ss := shards.Stats()
	rep.ShardStore = ShardDedup{
		Entries: ss.Entries, Bytes: ss.Bytes, Puts: ss.Puts,
		Hits: ss.Hits, BytesDeduped: ss.BytesDeduped,
	}
	return rep, nil
}

// readBaseline parses a baseline report file.
func readBaseline(path string) (Report, error) {
	var base Report
	data, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	err = json.Unmarshal(data, &base)
	return base, err
}

// gate compares the run against the baseline and fails on charged-work
// regressions beyond the tolerance.
func gate(report Report, baselinePath string, tolerance float64) error {
	base, err := readBaseline(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline %s: %w (run with -write-baseline to create it)", baselinePath, err)
	}
	if base.Corpus != report.Corpus {
		return fmt.Errorf("baseline measured corpus %+v, this run %+v — not comparable", base.Corpus, report.Corpus)
	}
	var failures []string
	check := func(name, metric string, cur, old int64) {
		if old <= 0 {
			return
		}
		limit := float64(old) * (1 + tolerance)
		switch {
		case float64(cur) > limit:
			failures = append(failures, fmt.Sprintf(
				"%s %s regressed: %d -> %d (+%.1f%%, limit +%.0f%%)",
				name, metric, old, cur, 100*float64(cur-old)/float64(old), 100*tolerance))
		case cur < old:
			fmt.Fprintf(os.Stderr, "note: %s %s improved: %d -> %d (-%.1f%%); consider refreshing the baseline\n",
				name, metric, old, cur, 100*float64(old-cur)/float64(old))
		}
	}
	for name, old := range base.Backends {
		cur, ok := report.Backends[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("backend %q in baseline but not measured", name))
			continue
		}
		check(name, "work_units", cur.WorkUnits, old.WorkUnits)
		check(name, "lines_scanned", cur.LinesScanned, old.LinesScanned)
	}
	check("warm-cache", "work_units", report.WarmCache.WorkUnits, base.WarmCache.WorkUnits)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "REGRESSION:", f)
		}
		return fmt.Errorf("%d charged-work regression(s) vs %s", len(failures), baselinePath)
	}
	fmt.Fprintln(os.Stderr, "bench gate passed: no charged-work regressions")
	return nil
}
