// Command backdroid analyzes an app container with the BackDroid targeted
// analysis engine and prints the per-sink report.
//
// Usage:
//
//	backdroid [-subclass-sinks] [-timeout MIN] [-ssg] app.apk...
package main

import (
	"flag"
	"fmt"
	"os"

	"backdroid/internal/apk"
	"backdroid/internal/core"
)

func main() {
	var (
		subclassSinks = flag.Bool("subclass-sinks", false,
			"resolve sink APIs invoked through app subclasses of system classes")
		timeout = flag.Float64("timeout", 0, "simulated-minute budget (0 = none)")
		showSSG = flag.Bool("ssg", false, "dump the self-contained slicing graph per sink")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: backdroid [flags] app.apk...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Args(), *subclassSinks, *timeout, *showSSG); err != nil {
		fmt.Fprintln(os.Stderr, "backdroid:", err)
		os.Exit(1)
	}
}

func run(paths []string, subclassSinks bool, timeout float64, showSSG bool) error {
	opts := core.DefaultOptions()
	opts.ResolveSinkSubclasses = subclassSinks
	opts.TimeoutMinutes = timeout

	for _, path := range paths {
		app, err := apk.Load(path)
		if err != nil {
			return err
		}
		engine, err := core.New(app, opts)
		if err != nil {
			return err
		}
		report, err := engine.Analyze()
		if err != nil {
			return err
		}
		printReport(report, showSSG)
	}
	return nil
}

func printReport(r *core.Report, showSSG bool) {
	fmt.Printf("== %s ==\n", r.App)
	if r.TimedOut {
		fmt.Println("  TIMED OUT")
	}
	for _, s := range r.Sinks {
		status := "unreachable"
		if s.Reachable {
			status = "reachable"
		}
		verdict := ""
		if s.Insecure {
			verdict = "  [INSECURE: " + s.Call.Sink.Rule.String() + "]"
		}
		fmt.Printf("  sink %s\n    in %s (%s)%s\n",
			s.Call.Sink.Method.SootSignature(), s.Call.Caller.SootSignature(), status, verdict)
		for _, v := range s.Values {
			fmt.Printf("    value: %s\n", v)
		}
		for _, en := range s.Entries {
			fmt.Printf("    entry: %s\n", en.SootSignature())
		}
		if showSSG && s.SSG != nil {
			fmt.Println(indent(s.SSG.String(), "    "))
		}
	}
	st := r.Stats
	fmt.Printf("  stats: %d sink calls, %.2f sim-min, wall %v, %d methods analyzed\n",
		st.SinkCallsTotal, st.SimMinutes, st.WallTime.Round(1e6), st.MethodsAnalyzed)
	fmt.Printf("  search: %d commands, %.1f%% cache rate; sink cache %.1f%%; loops: %v\n",
		st.Search.Commands, st.Search.Rate()*100, st.SinkCacheRate()*100, st.Loops)
}

func indent(s, pad string) string {
	out := pad
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += pad
		}
	}
	return out
}
