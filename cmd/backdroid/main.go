// Command backdroid analyzes app containers with the BackDroid targeted
// analysis engine and prints the per-sink report.
//
// Usage:
//
//	backdroid [-subclass-sinks] [-timeout MIN] [-ssg] [-backend B] [-workers W]
//	          [-shards N] [-index-cache DIR] [-parallel-lookups]
//	          [-auto-parallel-lookups] [-store-budget BYTES] [-stats=false]
//	          [-delta] [-nodes N] [-faults SPEC] [-trace FILE]
//	          [-cpuprofile FILE] [-memprofile FILE] app.apk...
//
// -nodes N analyzes the corpus on a fault-tolerant fleet of N worker
// nodes (the service scheduler's coordinator path): dispatches are
// leased, bundles are consistent-hashed across per-node partitions
// (budgeted by -store-budget; -1 runs storeless), and nodes killed by a
// -faults plan hand their jobs off to survivors — reports stay
// byte-identical to a fault-free run, in argument order. -faults SPEC is
// a deterministic fault plan (see internal/faultinject), e.g.
//
//	backdroid -nodes 4 -store-budget 0 -faults 'kill:node=2@50000' apps/*.apk
//
// B selects the bytecode search backend: indexed (default, inverted-index
// lookups), sharded (per-classesN.dex index shards, built concurrently) or
// linear (paper-faithful full-text scan). W bounds how many of the listed
// apps are analyzed concurrently; reports are always printed in argument
// order and are identical for any W. -shards overrides the sharded
// backend's shard count (0 = auto). -index-cache persists each app's
// dump+index bundle in DIR so re-analyses skip disassembly and
// tokenization entirely (a fully warm start). -parallel-lookups fans
// hot-token postings fetches out per shard (sharded backend; results are
// identical); -auto-parallel-lookups derives the hot-token gate from each
// app's own postings distribution instead of the fixed default.
// -store-budget shares an in-memory content-addressed bundle store across
// the listed apps (listing an app twice makes the second analysis fully
// warm with zero disk I/O); cmd/backdroidd keeps such a store alive
// across submissions. -stats=false suppresses the cost/statistics lines,
// leaving only the deterministic detection report (useful for diffing
// backends against each other).
//
// -delta treats the listed containers as successive versions of one app
// (base first) and analyzes each update incrementally against its
// predecessor's bundle: the engine diffs the per-class shard manifests,
// carries over every settled sink verdict whose recorded footprint
// cannot observe the update, and re-analyzes only the sinks the changed
// classes can affect. Verdicts are identical to a cold analysis of each
// version; only the charged cost shrinks. Apps are analyzed sequentially
// in argument order (the chain is inherently ordered).
//
// -trace FILE records a simtime-anchored span trace of the run — engine
// phases per job, and in fleet mode the scheduler's queue/dispatch/
// steal/handoff events — and writes it as Chrome trace-event JSON
// (load it at chrome://tracing or ui.perfetto.dev). Timestamps are
// charged work units on per-job tracks, never wall time, so two runs of
// one corpus and seed write byte-identical files; tracing never changes
// a report or a charged unit.
//
// An interrupt (Ctrl-C) cancels the in-flight analyses cooperatively:
// every engine stops at its next meter checkpoint (within
// simtime.CancelCheckpointUnits of charged work), apps not yet analyzed
// print a CANCELED marker, and the command exits nonzero — the one-shot
// CLI's version of the service's running-job cancellation.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"

	"backdroid/internal/apk"
	"backdroid/internal/bcsearch"
	"backdroid/internal/core"
	"backdroid/internal/dexdump"
	"backdroid/internal/faultinject"
	"backdroid/internal/obs"
	"backdroid/internal/pool"
	"backdroid/internal/pprofutil"
	"backdroid/internal/service"
	"backdroid/internal/simtime"
)

// config carries the parsed CLI flags.
type config struct {
	subclassSinks   bool
	timeout         float64
	showSSG         bool
	backend         string
	workers         int
	shards          int
	indexCache      string
	parallelLookups bool
	autoParallel    bool
	storeBudget     int64
	stats           bool
	delta           bool
	nodes           int
	faults          string
	trace           string
	cpuprofile      string
	memprofile      string
}

func main() {
	var cfg config
	flag.BoolVar(&cfg.subclassSinks, "subclass-sinks", false,
		"resolve sink APIs invoked through app subclasses of system classes")
	flag.Float64Var(&cfg.timeout, "timeout", 0, "simulated-minute budget (0 = none)")
	flag.BoolVar(&cfg.showSSG, "ssg", false, "dump the self-contained slicing graph per sink")
	flag.StringVar(&cfg.backend, "backend", "indexed", "search backend: indexed, sharded or linear")
	flag.IntVar(&cfg.workers, "workers", runtime.NumCPU(),
		"concurrent app analyses (reports stay in argument order)")
	flag.IntVar(&cfg.shards, "shards", 0,
		"index shard count for -backend sharded (0 = auto: per classesN.dex)")
	flag.StringVar(&cfg.indexCache, "index-cache", "",
		"directory for persistent dump+index bundles (empty = disabled)")
	flag.BoolVar(&cfg.parallelLookups, "parallel-lookups", false,
		"fan hot-token shard lookups out on the worker pool (sharded backend)")
	flag.BoolVar(&cfg.autoParallel, "auto-parallel-lookups", false,
		"derive the hot-token fan-out gate from each app's postings distribution")
	flag.Int64Var(&cfg.storeBudget, "store-budget", -1,
		"share an in-memory content-addressed bundle store across the listed apps,\nwith this byte budget (0 = unlimited, -1 = disabled)")
	flag.BoolVar(&cfg.stats, "stats", true,
		"print cost/statistics lines (disable for deterministic backend diffs)")
	flag.BoolVar(&cfg.delta, "delta", false,
		"treat the listed apps as successive versions of one app and analyze\neach update incrementally against its predecessor")
	flag.IntVar(&cfg.nodes, "nodes", 0,
		"analyze on a fault-tolerant worker fleet of N nodes (0 = plain pool)")
	flag.StringVar(&cfg.faults, "faults", "",
		"deterministic fault plan for -nodes, e.g. 'kill:node=2@50000'")
	flag.StringVar(&cfg.trace, "trace", "",
		"write a Chrome trace-event JSON timeline of the run to this file")
	flag.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&cfg.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: backdroid [flags] app.apk...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Args(), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "backdroid:", err)
		os.Exit(1)
	}
}

func run(paths []string, cfg config) error {
	stopProfiles, err := pprofutil.Start(cfg.cpuprofile, cfg.memprofile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	backend, err := bcsearch.ParseBackend(cfg.backend)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.SearchBackend = backend
	opts.ResolveSinkSubclasses = cfg.subclassSinks
	opts.TimeoutMinutes = cfg.timeout
	opts.IndexShards = cfg.shards
	opts.IndexCacheDir = cfg.indexCache
	opts.ParallelLookups = cfg.parallelLookups
	opts.AutoParallelLookups = cfg.autoParallel
	var store *service.BundleStore
	if cfg.storeBudget >= 0 && cfg.nodes == 0 {
		// One content-addressed store for the whole invocation: listing
		// the same app twice makes the second analysis fully warm.
		store = service.NewBundleStore(cfg.storeBudget)
		opts.Bundles = store
	}
	if cfg.delta && store == nil {
		// The delta chain needs each predecessor's bundle; a private
		// unlimited store holds them for the invocation.
		store = service.NewBundleStore(0)
		opts.Bundles = store
	}

	// Cooperative interrupt handling: the first Ctrl-C flips a flag every
	// engine's meter polls at its checkpoints, so in-flight analyses stop
	// within one checkpoint instead of dying mid-write; a second Ctrl-C
	// falls through to the default hard kill.
	var interrupted atomic.Bool
	opts.Cancel = interrupted.Load
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	defer signal.Stop(sigc)
	go func() {
		if _, ok := <-sigc; ok {
			interrupted.Store(true)
			signal.Stop(sigc)
		}
	}()

	var trace *obs.Trace
	if cfg.trace != "" {
		trace = obs.NewTrace()
	}

	if cfg.nodes > 0 {
		if cfg.delta {
			return fmt.Errorf("-delta and -nodes are mutually exclusive (the version chain is inherently sequential)")
		}
		return saveTrace(runFleet(paths, cfg, opts, trace), cfg.trace, trace)
	}
	if cfg.delta {
		return saveTrace(runDelta(paths, cfg, opts, store, trace), cfg.trace, trace)
	}

	// Analyze concurrently, report in argument order. Every app gets its
	// own engine; errors keep their argument position so the first failure
	// reported is deterministic.
	reports := make([]*core.Report, len(paths))
	errs := pool.ForEach(len(paths), cfg.workers, func(i int) error {
		o := opts
		traceEngine(&o, trace, int64(i+1))
		var err error
		reports[i], err = analyze(paths[i], o, store)
		return err
	})

	canceled := 0
	for i := range paths {
		if errs[i] == simtime.ErrCanceled {
			canceled++
			fmt.Printf("== %s ==\n  CANCELED (stopped at a meter checkpoint)\n", paths[i])
			continue
		}
		if errs[i] != nil {
			return saveTrace(errs[i], cfg.trace, trace)
		}
		printReport(reports[i], cfg)
	}
	if canceled > 0 {
		return saveTrace(fmt.Errorf("interrupted: %d of %d analyses canceled", canceled, len(paths)), cfg.trace, trace)
	}
	return saveTrace(nil, cfg.trace, trace)
}

// traceEngine installs the per-job engine trace hooks: phase spans and
// one charged-units counter sample per meter checkpoint, on the job's
// main track. The hooks observe unit boundaries the engine reaches
// anyway; they never charge, so a traced report is bitwise-identical to
// an untraced one. No-op when tracing is off.
func traceEngine(o *core.Options, trace *obs.Trace, job int64) {
	if trace == nil {
		return
	}
	o.PhaseSpan = func(phase string, sink int, start, end int64) {
		sp := obs.Span{Job: job, Sub: 0, Name: phase, Cat: "engine",
			Start: start, Dur: end - start}
		if sink >= 0 {
			sp.Args = []obs.Arg{{Key: "sink", Value: fmt.Sprint(sink)}}
		}
		trace.Add(sp)
	}
	o.MeterCheckpoint = func(units, delta int64) {
		trace.AddCounter(obs.CounterSample{Job: job, TS: units, Value: units})
	}
}

// saveTrace writes the recorded trace as Chrome trace-event JSON; a
// write failure surfaces only when the run itself succeeded. No-op when
// tracing is off.
func saveTrace(runErr error, path string, trace *obs.Trace) error {
	if trace == nil {
		return runErr
	}
	f, err := os.Create(path)
	if err == nil {
		err = obs.WriteChrome(f, trace)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if runErr != nil {
		return runErr
	}
	return err
}

// runFleet analyzes the corpus on a fault-tolerant worker fleet — the
// service scheduler's coordinator path, driven one-shot. Each app is a
// job; a node killed by the -faults plan has its jobs handed off to
// surviving nodes, and reports print in argument order regardless of
// which node (or which attempt) produced them.
func runFleet(paths []string, cfg config, opts core.Options, trace *obs.Trace) error {
	var plan *faultinject.Plan
	if cfg.faults != "" {
		var err error
		plan, err = faultinject.Parse(cfg.faults)
		if err != nil {
			return err
		}
	}
	sched := service.New(service.Config{
		Nodes:           cfg.nodes,
		NodeStoreBudget: cfg.storeBudget,
		Faults:          plan,
		Options:         &opts,
		IndexCacheDir:   cfg.indexCache,
		Trace:           trace,
	})
	ids := make([]service.JobID, len(paths))
	for i, path := range paths {
		p := path
		id, err := sched.Submit(service.Job{
			Name:         p,
			Spec:         p,
			Source:       func() (*apk.App, error) { return apk.Load(p) },
			RunBackDroid: true,
		})
		if err != nil {
			sched.Close()
			return err
		}
		ids[i] = id
	}
	canceled := 0
	var firstErr error
	for i, id := range ids {
		res, err := sched.Wait(id)
		switch {
		case err == nil:
			printReport(res.BackDroid, cfg)
		case err == service.ErrCanceled:
			canceled++
			fmt.Printf("== %s ==\n  CANCELED (stopped at a meter checkpoint)\n", paths[i])
		default:
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	sched.Close()
	if cfg.stats {
		if fs := sched.FleetStats(); fs != nil {
			fmt.Printf("fleet: %d nodes (%d live, %d killed); %d handoffs, %d expired leases; %d units lost, %d overhead; bundle gets %d local / %d remote; %d fetch faults\n",
				fs.Nodes, fs.Live, fs.Killed, fs.Handoffs, fs.ExpiredLeases,
				fs.LostUnits, fs.OverheadUnits, fs.LocalGets, fs.RemoteGets, fs.FetchFaults)
			fmt.Printf("steal: %d chunks off %d victims, %d sinks moved, %d units charged; makespan %d units\n",
				fs.Steals, fs.StealVictims, fs.StolenSinks, fs.StealUnits, fs.MakespanUnits)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if canceled > 0 {
		return fmt.Errorf("interrupted: %d of %d analyses canceled", canceled, len(paths))
	}
	return nil
}

// runDelta analyzes the listed containers as one app's version chain:
// the first runs cold, every later one incrementally against its
// predecessor's bundle and report. A version whose base proves unusable
// (timed out, evicted, legacy bundle) silently runs full — never wrong,
// at worst cold.
func runDelta(paths []string, cfg config, opts core.Options, store *service.BundleStore, trace *obs.Trace) error {
	var prev *core.DeltaBase
	for i, path := range paths {
		app, err := apk.Load(path)
		if err != nil {
			return err
		}
		fp := dexdump.AppFingerprint(app.Dexes)
		o := opts
		traceEngine(&o, trace, int64(i+1))
		if prev != nil && prev.Fingerprint != fp {
			o.DeltaFrom = prev
		}
		engine, err := core.New(app, o)
		if err == nil {
			var rep *core.Report
			rep, err = engine.Analyze()
			if err == nil {
				printReport(rep, cfg)
				if data, ok := store.GetBundle(fp); ok && !rep.TimedOut {
					prev = &core.DeltaBase{Fingerprint: fp, Bundle: data, Report: rep}
				}
				continue
			}
		}
		if err == simtime.ErrCanceled {
			fmt.Printf("== %s ==\n  CANCELED (stopped at a meter checkpoint)\n", path)
			return fmt.Errorf("interrupted: %d of %d analyses canceled", len(paths)-i, len(paths))
		}
		return err
	}
	return nil
}

func analyze(path string, opts core.Options, store *service.BundleStore) (*core.Report, error) {
	app, err := apk.Load(path)
	if err != nil {
		return nil, err
	}
	if store != nil {
		// Single-flight per fingerprint, exactly like the service
		// scheduler: with the same app listed twice and workers > 1, the
		// first analysis performs the only cold build and the second
		// waits, then runs fully warm off the shared entry.
		fp := dexdump.AppFingerprint(app.Dexes)
		if !store.Contains(fp) {
			release := store.LockFingerprint(fp)
			defer release()
		}
	}
	engine, err := core.New(app, opts)
	if err != nil {
		return nil, err
	}
	return engine.Analyze()
}

func printReport(r *core.Report, cfg config) {
	fmt.Printf("== %s ==\n", r.App)
	if r.TimedOut {
		fmt.Println("  TIMED OUT")
	}
	for _, s := range r.Sinks {
		status := "unreachable"
		if s.Reachable {
			status = "reachable"
		}
		verdict := ""
		if s.Insecure {
			verdict = "  [INSECURE: " + s.Call.Sink.Rule.String() + "]"
		}
		fmt.Printf("  sink %s\n    in %s (%s)%s\n",
			s.Call.Sink.Method.SootSignature(), s.Call.Caller.SootSignature(), status, verdict)
		for _, v := range s.Values {
			fmt.Printf("    value: %s\n", v)
		}
		for _, en := range s.Entries {
			fmt.Printf("    entry: %s\n", en.SootSignature())
		}
		if cfg.showSSG && s.SSG != nil {
			fmt.Println(indent(s.SSG.String(), "    "))
		}
	}
	if !cfg.stats {
		return
	}
	st := r.Stats
	fmt.Printf("  stats: %d sink calls, %.2f sim-min, wall %v, %d methods analyzed\n",
		st.SinkCallsTotal, st.SimMinutes, st.WallTime.Round(1e6), st.MethodsAnalyzed)
	fmt.Printf("  search: %d commands, %.1f%% cache rate; sink cache %.1f%%; loops: %v\n",
		st.Search.Commands, st.Search.Rate()*100, st.SinkCacheRate()*100, st.Loops)
	if st.Search.IndexBuilds > 0 {
		fmt.Printf("  index: built over %d lines (%d shards); %d postings visited, %d lines scanned (raw fallbacks)\n",
			st.Search.IndexLines, st.Search.ShardCount, st.Search.PostingsScanned, st.Search.LinesScanned)
	}
	if st.Search.IndexCacheHits > 0 || st.Search.IndexCacheMisses > 0 {
		fmt.Printf("  index cache: %d hits, %d misses (%d shards); %d postings visited\n",
			st.Search.IndexCacheHits, st.Search.IndexCacheMisses, st.Search.ShardCount, st.Search.PostingsScanned)
	}
	if st.DumpCacheHits > 0 || st.DumpCacheMisses > 0 {
		fmt.Printf("  dump cache: %d hits, %d misses; load charged %d units, %d lines disassembled\n",
			st.DumpCacheHits, st.DumpCacheMisses, st.DumpCacheUnits, st.DumpLinesDisassembled)
	}
	if st.BundleStoreHits > 0 || st.BundleStoreMisses > 0 {
		fmt.Printf("  bundle store: %d hits, %d misses\n", st.BundleStoreHits, st.BundleStoreMisses)
	}
	if st.ForwardMemoHits > 0 {
		fmt.Printf("  forward memo: %d evaluations reused\n", st.ForwardMemoHits)
	}
	if st.ShardsUnchanged+st.ShardsChanged > 0 {
		fmt.Printf("  delta: %d/%d shards unchanged; %d sinks reused, %d re-run; %d dump lines at reuse rate\n",
			st.ShardsUnchanged, st.ShardsUnchanged+st.ShardsChanged,
			st.SinksReused, st.SinksRerun, st.DeltaReusedLines)
	}
	if st.Search.ParallelLookups > 0 {
		fmt.Printf("  parallel lookups: %d hot tokens fanned out (gate %d)\n",
			st.Search.ParallelLookups, st.Search.ParallelLookupMin)
	}
	if st.CancelPolls > 0 {
		fmt.Printf("  cancellation: %d checkpoint polls\n", st.CancelPolls)
	}
}

func indent(s, pad string) string {
	out := pad
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += pad
		}
	}
	return out
}
