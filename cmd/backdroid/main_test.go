package main

import (
	"os"
	"path/filepath"
	"testing"

	"backdroid/internal/testapps"
)

func fixturePath(t *testing.T) string {
	t.Helper()
	app, err := testapps.Fixture()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), app.Name+".apk")
	if err := app.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAnalyzesContainer(t *testing.T) {
	path := fixturePath(t)
	if err := run([]string{path}, config{backend: "indexed", workers: 1}); err != nil {
		t.Fatalf("run: %v", err)
	}
	// With SSG dumps and subclass resolution.
	if err := run([]string{path}, config{subclassSinks: true, showSSG: true, workers: 1}); err != nil {
		t.Fatalf("run with flags: %v", err)
	}
}

func TestRunLinearBackend(t *testing.T) {
	path := fixturePath(t)
	if err := run([]string{path}, config{backend: "linear", workers: 1}); err != nil {
		t.Fatalf("run linear: %v", err)
	}
}

func TestRunUnknownBackend(t *testing.T) {
	path := fixturePath(t)
	if err := run([]string{path}, config{backend: "bogus"}); err == nil {
		t.Error("unknown backend must fail")
	}
}

func TestRunParallelApps(t *testing.T) {
	path := fixturePath(t)
	// The same fixture three times through a 3-worker pool.
	if err := run([]string{path, path, path}, config{workers: 3}); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"/nonexistent/x.apk"}, config{}); err == nil {
		t.Error("missing file must fail")
	}
}

func TestRunBadContainer(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.apk")
	if err := os.WriteFile(bad, []byte("not a zip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, config{}); err == nil {
		t.Error("bad container must fail")
	}
}

func TestIndent(t *testing.T) {
	got := indent("a\nb", "  ")
	if got != "  a\n  b" {
		t.Errorf("indent = %q", got)
	}
}

func TestRunShardedBackend(t *testing.T) {
	path := fixturePath(t)
	if err := run([]string{path}, config{backend: "sharded", workers: 1, stats: true}); err != nil {
		t.Fatalf("run sharded: %v", err)
	}
	if err := run([]string{path}, config{backend: "sharded", shards: 3, workers: 1}); err != nil {
		t.Fatalf("run sharded with explicit count: %v", err)
	}
}

func TestRunIndexCache(t *testing.T) {
	path := fixturePath(t)
	dir := t.TempDir()
	cfg := config{backend: "sharded", workers: 1, indexCache: dir, stats: true}
	if err := run([]string{path}, cfg); err != nil {
		t.Fatalf("cold cached run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("cache dir has %d entries, want 1", len(entries))
	}
	// Warm run loads the file written above.
	if err := run([]string{path}, cfg); err != nil {
		t.Fatalf("warm cached run: %v", err)
	}
}

func TestRunStatsSuppressed(t *testing.T) {
	path := fixturePath(t)
	if err := run([]string{path}, config{backend: "linear", workers: 1, stats: false}); err != nil {
		t.Fatalf("run without stats: %v", err)
	}
}

func TestRunParallelLookups(t *testing.T) {
	path := fixturePath(t)
	cfg := config{backend: "sharded", workers: 1, parallelLookups: true, stats: true}
	if err := run([]string{path}, cfg); err != nil {
		t.Fatalf("run with parallel lookups: %v", err)
	}
}

func TestRunWarmBundle(t *testing.T) {
	path := fixturePath(t)
	dir := t.TempDir()
	cfg := config{backend: "sharded", workers: 1, indexCache: dir, parallelLookups: true, stats: true}
	// Cold run writes the bundle; warm run must load dump and index.
	if err := run([]string{path}, cfg); err != nil {
		t.Fatalf("cold bundle run: %v", err)
	}
	if err := run([]string{path}, cfg); err != nil {
		t.Fatalf("warm bundle run: %v", err)
	}
}
