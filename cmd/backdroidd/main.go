// Command backdroidd is the long-running batch analysis service: a
// multi-tenant job queue over the BackDroid engine with an in-memory
// content-addressed bundle store, a durable job journal and cooperative
// in-flight cancellation. Re-analyses of an app the service has already
// seen perform zero disassembly, zero index builds and zero bundle disk
// I/O; a restarted service replays its journal and finishes the queue it
// died with.
//
// Usage:
//
//	backdroidd [-workers N] [-queue N] [-store-budget BYTES] [-backend B]
//	           [-index-cache DIR] [-journal DIR] [-tenants SPEC]
//	           [-parallel-lookups] [-auto-parallel-lookups] [-stats]
//
// -journal DIR makes the queue durable: submissions and outcomes are
// appended to DIR/journal.bdj, and on startup every job that was still
// pending when the previous process died is re-enqueued automatically
// (a "recovered jobs=N" line reports the replay). -tenants preconfigures
// tenant weights as comma-separated name=weight pairs (e.g.
// "paid=3,free=1"); unknown tenants are admitted at weight 1. Dispatch
// across tenants with queued work is deterministic weighted round-robin,
// so one tenant's backlog cannot head-of-line-block another's submits.
//
// The service reads commands from stdin, one per line, and streams typed
// events to stdout as jobs progress:
//
//	submit [tenant=NAME] PATH   queue the app container at PATH
//	cancel ID                   cancel a queued or running job
//	stats                       print store/tenant/journal counters
//	recover                     re-enqueue journaled pending jobs (no-op
//	                            after the automatic startup replay)
//	die                         crash drill: stop dispatching and exit
//	                            without draining the queue (journaled
//	                            pending jobs replay on the next start)
//	quit                        drain the queue and exit (EOF does the same)
//
// Events are printed as single lines: "queued"/"started"/"canceled" with
// the job id and app, one "sink" line per resolved sink (final verdict
// included — emitted while the job is still running), and a terminal
// "done" or "failed" line. Canceling a running job stops the engine at
// its next meter checkpoint; the job's terminal line is its single
// "canceled" event and no further sink lines follow it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"backdroid/internal/apk"
	"backdroid/internal/bcsearch"
	"backdroid/internal/core"
	"backdroid/internal/service"
	"backdroid/internal/service/journal"
)

// config carries the parsed CLI flags.
type config struct {
	workers      int
	queue        int
	storeBudget  int64
	backend      string
	indexCache   string
	journalDir   string
	tenants      string
	parallel     bool
	autoParallel bool
	stats        bool
}

func main() {
	var cfg config
	flag.IntVar(&cfg.workers, "workers", runtime.NumCPU(), "concurrent job analyses")
	flag.IntVar(&cfg.queue, "queue", 0, "per-tenant job queue depth (0 = 2x workers)")
	flag.Int64Var(&cfg.storeBudget, "store-budget", 256<<20,
		"in-memory bundle store byte budget (0 = unlimited, -1 = store disabled)")
	flag.StringVar(&cfg.backend, "backend", "sharded", "search backend: indexed, sharded or linear")
	flag.StringVar(&cfg.indexCache, "index-cache", "",
		"directory for persistent dump+index bundles (empty = memory only)")
	flag.StringVar(&cfg.journalDir, "journal", "",
		"directory for the durable job journal (empty = in-memory queue only)")
	flag.StringVar(&cfg.tenants, "tenants", "",
		"tenant weights as comma-separated name=weight pairs (e.g. paid=3,free=1)")
	flag.BoolVar(&cfg.parallel, "parallel-lookups", false,
		"fan hot-token shard lookups out on the worker pool")
	flag.BoolVar(&cfg.autoParallel, "auto-parallel-lookups", false,
		"derive the hot-token gate from each app's postings distribution")
	flag.BoolVar(&cfg.stats, "stats", true, "append cost counters to done lines")
	flag.Parse()
	if err := serve(os.Stdin, os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "backdroidd:", err)
		os.Exit(1)
	}
}

// parseTenants parses the -tenants flag into tenant configs.
func parseTenants(spec string) (map[string]service.TenantConfig, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]service.TenantConfig)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, ws, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenants wants name=weight pairs, got %q", part)
		}
		w, err := strconv.Atoi(ws)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-tenants weight for %q must be a positive integer, got %q", name, ws)
		}
		out[name] = service.TenantConfig{Weight: w}
	}
	return out, nil
}

// serve runs the command loop: it owns the scheduler, forwards stdin
// commands to it, and prints the event stream. Split from main so tests
// drive it with in-memory pipes.
func serve(in io.Reader, out io.Writer, cfg config) error {
	backend, err := bcsearch.ParseBackend(cfg.backend)
	if err != nil {
		return err
	}
	tenants, err := parseTenants(cfg.tenants)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.SearchBackend = backend
	opts.ParallelLookups = cfg.parallel
	opts.AutoParallelLookups = cfg.autoParallel

	var store *service.BundleStore
	if cfg.storeBudget >= 0 {
		store = service.NewBundleStore(cfg.storeBudget)
		// The corpus-wide shard-level dedup layer: bundles of successive
		// app versions (and of apps sharing SDK dexes) share postings
		// payloads instead of duplicating them per fingerprint.
		store.AttachShardStore(service.NewShardStore())
	}
	var jnl *journal.Journal
	if cfg.journalDir != "" {
		j, _, err := journal.Open(cfg.journalDir)
		if err != nil {
			return err
		}
		jnl = j
		defer jnl.Close()
	}
	events := make(chan service.Event, 64)
	sched := service.New(service.Config{
		Workers:       cfg.workers,
		QueueDepth:    cfg.queue,
		Tenants:       tenants,
		Options:       &opts,
		IndexCacheDir: cfg.indexCache,
		Store:         store,
		Journal:       jnl,
		Events:        events,
	})

	// One writer goroutine serializes event lines against command
	// responses (both print through mu).
	var mu sync.Mutex
	printf := func(format string, args ...any) {
		mu.Lock()
		fmt.Fprintf(out, format, args...)
		mu.Unlock()
	}
	var drain sync.WaitGroup
	drain.Add(1)
	go func() {
		defer drain.Done()
		for ev := range events {
			printEvent(printf, ev, cfg.stats)
			// Terminal events reap the scheduler's retained job state —
			// the event line is this protocol's result delivery, so a
			// long-running service must not accumulate finished reports.
			switch ev.Kind {
			case service.EventDone, service.EventFailed, service.EventCanceled:
				sched.Forget(ev.Job)
			}
		}
	}()

	// Startup replay: re-enqueue the queue the previous process died
	// with. The replayed jobs stream queued/started/... events exactly
	// like fresh submits, under their original ids.
	if jnl != nil {
		printf("recovered jobs=%d\n", recoverJobs(sched))
	}

	abandon := false // die: exit without draining the queue
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cmd, arg := line, ""
		if i := strings.IndexByte(line, ' '); i >= 0 {
			cmd, arg = line[:i], strings.TrimSpace(line[i+1:])
		}
		switch cmd {
		case "quit", "exit":
			goto shutdown
		case "die":
			abandon = true
			goto shutdown
		case "stats":
			printf("%s", statsLines(sched))
		case "recover":
			if jnl == nil {
				printf("error: no journal configured (-journal DIR)\n")
				continue
			}
			printf("recovered jobs=%d\n", recoverJobs(sched))
		case "cancel":
			id, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				printf("error: cancel wants a job id, got %q\n", arg)
				continue
			}
			if !sched.Cancel(service.JobID(id)) {
				printf("error: job %d not cancelable (unknown, finished or already canceled)\n", id)
			}
		case "submit":
			submit(sched, printf, arg)
		default:
			// A bare path is a submit.
			submit(sched, printf, line)
		}
	}
	if err := sc.Err(); err != nil {
		sched.Close()
		close(events)
		drain.Wait()
		return err
	}

shutdown:
	if abandon {
		// Crash drill: stop dispatching, finish only the running jobs,
		// abandon the rest of the queue. With a journal the abandoned
		// jobs stay pending on disk and replay on the next start.
		sched.Halt()
		close(events)
		drain.Wait()
		return nil
	}
	sched.Close()
	close(events)
	drain.Wait()
	printf("%s", statsLines(sched))
	return nil
}

// recoverJobs replays the journal's pending submits as runnable jobs;
// each record's Spec is the APK path the original submit named.
func recoverJobs(sched *service.Scheduler) int {
	return sched.Recover(func(rec journal.Record) (service.Job, bool) {
		path := rec.Spec
		if path == "" {
			return service.Job{}, false
		}
		return service.Job{
			Name:         rec.Name,
			Tenant:       rec.Tenant,
			Spec:         path,
			Source:       func() (*apk.App, error) { return apk.Load(path) },
			RunBackDroid: true,
		}, true
	})
}

// submit queues one APK path, optionally under a tenant
// ("tenant=NAME PATH"); the file is opened lazily on the worker, so a bad
// path surfaces as a failed event, not a submit error.
func submit(sched *service.Scheduler, printf func(string, ...any), arg string) {
	tenant := ""
	if rest, ok := strings.CutPrefix(arg, "tenant="); ok {
		t, path, ok := strings.Cut(rest, " ")
		if !ok {
			printf("error: submit wants a path\n")
			return
		}
		tenant, arg = t, strings.TrimSpace(path)
	}
	if arg == "" {
		printf("error: submit wants a path\n")
		return
	}
	path := arg
	name := strings.TrimSuffix(path[strings.LastIndexByte(path, '/')+1:], ".apk")
	_, err := sched.Submit(service.Job{
		Name:         name,
		Tenant:       tenant,
		Spec:         path,
		Source:       func() (*apk.App, error) { return apk.Load(path) },
		RunBackDroid: true,
	})
	if err != nil {
		printf("error: submit %s: %v\n", path, err)
	}
}

// printEvent renders one scheduler event as a stable single line. Sink
// and done lines carry the deterministic detection fields first, so
// diffing two submissions of the same app checks reuse end to end.
func printEvent(printf func(string, ...any), ev service.Event, stats bool) {
	switch ev.Kind {
	case service.EventSink:
		s := ev.Sink
		printf("sink id=%d app=%s sink=%s caller=%s reachable=%v insecure=%v values=%v\n",
			ev.Job, ev.Name, s.Call.Sink.Method.SootSignature(),
			s.Call.Caller.SootSignature(), s.Reachable, s.Insecure, s.Values)
	case service.EventDone:
		r := ev.Result.BackDroid
		line := fmt.Sprintf("done id=%d app=%s sinks=%d insecure=%d",
			ev.Job, ev.Name, len(r.Sinks), len(r.InsecureSinks()))
		if stats {
			st := r.Stats
			storeState := "off"
			switch {
			case st.BundleStoreHits > 0:
				storeState = "hit"
			case st.BundleStoreMisses > 0:
				storeState = "miss"
			}
			line += fmt.Sprintf(" units=%d store=%s disassembled=%d builds=%d memo=%d",
				st.WorkUnits, storeState, st.DumpLinesDisassembled,
				st.Search.IndexBuilds, st.ForwardMemoHits)
			if st.ShardsUnchanged+st.ShardsChanged > 0 {
				line += fmt.Sprintf(" delta_shards=%d/%d reused=%d rerun=%d",
					st.ShardsUnchanged, st.ShardsUnchanged+st.ShardsChanged,
					st.SinksReused, st.SinksRerun)
			}
		}
		printf("%s\n", line)
	case service.EventFailed:
		printf("failed id=%d app=%s err=%v\n", ev.Job, ev.Name, ev.Err)
	default:
		printf("%s id=%d app=%s\n", ev.Kind, ev.Job, ev.Name)
	}
}

// statsLines renders the bundle-store, per-tenant dispatch, journal and
// cancellation counters, one stable line each.
func statsLines(sched *service.Scheduler) string {
	var b strings.Builder
	if store := sched.Store(); store == nil {
		b.WriteString("stats store=disabled\n")
	} else {
		st := store.Stats()
		fmt.Fprintf(&b, "stats store entries=%d bytes=%d hits=%d misses=%d puts=%d evictions=%d drops=%d\n",
			st.Entries, st.Bytes, st.Hits, st.Misses, st.Puts, st.Evictions, st.Drops)
		sh := store.ShardStoreStats()
		fmt.Fprintf(&b, "stats shardstore entries=%d bytes=%d puts=%d hits=%d deduped=%d\n",
			sh.Entries, sh.Bytes, sh.Puts, sh.Hits, sh.BytesDeduped)
	}
	ss := sched.Stats()
	for _, t := range ss.Tenants {
		fmt.Fprintf(&b, "stats tenant name=%s weight=%d queued=%d submitted=%d dispatched=%d canceled_queued=%d canceled_running=%d\n",
			t.Name, t.Weight, t.Queued, t.Submitted, t.Dispatched,
			t.CanceledQueued, t.CanceledRunning)
	}
	if jnl := sched.Journal(); jnl != nil {
		js := jnl.Stats()
		fmt.Fprintf(&b, "stats journal records=%d bytes=%d pending=%d appends=%d compactions=%d recovered=%d dropped=%d units=%d\n",
			js.Records, js.Bytes, js.Pending, js.Appends, js.Compactions,
			js.Recovered, js.Dropped, ss.JournalUnits)
	}
	return b.String()
}
