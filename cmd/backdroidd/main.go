// Command backdroidd is the long-running batch analysis service: a
// multi-tenant job queue over the BackDroid engine with an in-memory
// content-addressed bundle store, a settled-result report store, a
// durable job journal and cooperative in-flight cancellation.
// Re-analyses of an app the service has already seen perform zero
// disassembly, zero index builds and zero bundle disk I/O; resubmitting
// a settled (app, options) pair performs zero engine work at all — the
// report is served from the content-addressed settled tier in O(1). A
// restarted service replays its journal, finishes the queue it died
// with and repopulates the settled tier from the journal's persistent
// report section.
//
// Usage:
//
//	backdroidd [-workers N] [-queue N] [-store-budget BYTES] [-backend B]
//	           [-index-cache DIR] [-journal DIR] [-tenants SPEC]
//	           [-report-budget BYTES] [-http ADDR] [-nodes N] [-faults SPEC]
//	           [-trace FILE] [-parallel-lookups] [-auto-parallel-lookups]
//	           [-stats] [-cpuprofile FILE] [-memprofile FILE]
//
// -nodes N runs the scheduler as a coordinator over a fault-tolerant
// fleet of N worker nodes: every dispatch takes a lease, bundles are
// consistent-hashed across per-node store partitions (each budgeted by
// -store-budget), and a node that dies has its jobs handed off to
// surviving nodes with at-most-once terminal events. -faults SPEC arms a
// deterministic fault plan (see internal/faultinject):
//
//	backdroidd -nodes 4 -faults 'kill:node=2@50000,beat-drop:node=3@8000'
//
// The process exits gracefully on SIGTERM: in-flight jobs drain, the
// event stream and SSE subscribers receive their final events, the
// journal is flushed, and journaled queued jobs replay on the next
// start.
//
// -journal DIR makes the queue durable: submissions and outcomes are
// appended to DIR/journal.bdj, and on startup every job that was still
// pending when the previous process died is re-enqueued automatically
// (a "recovered jobs=N" line reports the replay). -tenants preconfigures
// tenant weights as comma-separated name=weight pairs (e.g.
// "paid=3,free=1"); unknown tenants are admitted at weight 1. Dispatch
// across tenants with queued work is deterministic weighted round-robin,
// so one tenant's backlog cannot head-of-line-block another's submits.
//
// -http ADDR additionally serves the typed HTTP/JSON gateway
// (internal/service/api): POST /v1/jobs, GET /v1/jobs/{id}, DELETE
// /v1/jobs/{id}, GET /v1/reports/{app}/{options}, GET /v1/stats, an SSE
// stream at GET /v1/events, Prometheus text at GET /metrics and one
// job's Chrome trace-event JSON at GET /v1/trace/{id} (with -trace).
// Both front ends drive one shared dispatcher, so a job submitted over
// HTTP streams its events to stdin subscribers and vice versa.
//
// -trace FILE records every job's simtime-anchored span timeline —
// engine phases, and in fleet mode the scheduler's dispatch/steal/
// handoff events — and writes it as Chrome trace-event JSON on exit;
// GET /v1/trace/{id} serves a single job's slice while the daemon is
// live. Tracing never changes a report or a charged unit.
//
// The service reads commands from stdin, one per line, and streams typed
// events to stdout as jobs progress:
//
//	submit [tenant=NAME] PATH   queue the app container at PATH
//	cancel ID                   cancel a queued or running job
//	stats                       print store/tenant/journal counters
//	recover                     re-enqueue journaled pending jobs (no-op
//	                            after the automatic startup replay)
//	die                         crash drill: stop dispatching and exit
//	                            without draining the queue (journaled
//	                            pending jobs replay on the next start)
//	die node=N                  fence fleet node N (with -nodes): the
//	                            daemon keeps serving, the node's job is
//	                            handed off to a surviving node
//	quit                        drain the queue and exit (EOF does the same)
//
// Events are printed as single lines: "queued"/"started"/"canceled" with
// the job id and app, one "sink" line per resolved sink (final verdict
// included — emitted while the job is still running), and a terminal
// "done" or "failed" line. Canceling a running job stops the engine at
// its next meter checkpoint; the job's terminal line is its single
// "canceled" event and no further sink lines follow it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"backdroid/internal/bcsearch"
	"backdroid/internal/core"
	"backdroid/internal/faultinject"
	"backdroid/internal/obs"
	"backdroid/internal/pprofutil"
	"backdroid/internal/service"
	"backdroid/internal/service/api"
	"backdroid/internal/service/journal"
)

// config carries the parsed CLI flags.
type config struct {
	workers      int
	queue        int
	storeBudget  int64
	reportBudget int64
	backend      string
	indexCache   string
	journalDir   string
	tenants      string
	httpAddr     string
	nodes        int
	faults       string
	trace        string
	parallel     bool
	autoParallel bool
	stats        bool
	cpuprofile   string
	memprofile   string
}

func main() {
	var cfg config
	flag.IntVar(&cfg.workers, "workers", runtime.NumCPU(), "concurrent job analyses")
	flag.IntVar(&cfg.queue, "queue", 0, "per-tenant job queue depth (0 = 2x workers)")
	flag.Int64Var(&cfg.storeBudget, "store-budget", 256<<20,
		"in-memory bundle store byte budget (0 = unlimited, -1 = store disabled)")
	flag.Int64Var(&cfg.reportBudget, "report-budget", 64<<20,
		"settled-report store byte budget (0 = unlimited, -1 = settled tier disabled)")
	flag.StringVar(&cfg.backend, "backend", "sharded", "search backend: indexed, sharded or linear")
	flag.StringVar(&cfg.indexCache, "index-cache", "",
		"directory for persistent dump+index bundles (empty = memory only)")
	flag.StringVar(&cfg.journalDir, "journal", "",
		"directory for the durable job journal (empty = in-memory queue only)")
	flag.StringVar(&cfg.tenants, "tenants", "",
		"tenant weights as comma-separated name=weight pairs (e.g. paid=3,free=1)")
	flag.StringVar(&cfg.httpAddr, "http", "",
		"serve the HTTP/JSON gateway on this address (empty = stdin only)")
	flag.IntVar(&cfg.nodes, "nodes", 0,
		"run a fault-tolerant worker fleet of N nodes (0 = plain worker pool; overrides -workers)")
	flag.StringVar(&cfg.faults, "faults", "",
		"deterministic fault plan, e.g. 'kill:node=2@50000,beat-drop:node=3@8000'")
	flag.StringVar(&cfg.trace, "trace", "",
		"write a Chrome trace-event JSON timeline of every job to this file on exit")
	flag.BoolVar(&cfg.parallel, "parallel-lookups", false,
		"fan hot-token shard lookups out on the worker pool")
	flag.BoolVar(&cfg.autoParallel, "auto-parallel-lookups", false,
		"derive the hot-token gate from each app's postings distribution")
	flag.BoolVar(&cfg.stats, "stats", true, "append cost counters to done lines")
	flag.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&cfg.memprofile, "memprofile", "",
		"write a heap profile to this file on exit (flushed on the SIGTERM drain too)")
	flag.Parse()
	if err := serve(os.Stdin, os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "backdroidd:", err)
		os.Exit(1)
	}
}

// parseTenants parses the -tenants flag into tenant configs.
func parseTenants(spec string) (map[string]service.TenantConfig, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]service.TenantConfig)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, ws, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenants wants name=weight pairs, got %q", part)
		}
		w, err := strconv.Atoi(ws)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-tenants weight for %q must be a positive integer, got %q", name, ws)
		}
		out[name] = service.TenantConfig{Weight: w}
	}
	return out, nil
}

// serve runs the command loop: it builds the shared dispatcher, forwards
// stdin commands to it (and, with -http, serves the gateway over the
// same dispatcher), and prints the event stream. Split from main so
// tests drive it with in-memory pipes.
func serve(in io.Reader, out io.Writer, cfg config) error {
	stopProfiles, err := pprofutil.Start(cfg.cpuprofile, cfg.memprofile)
	if err != nil {
		return err
	}
	// Every exit path — quit, EOF, die and the SIGTERM drain — returns
	// through here, so the profiles are always flushed.
	defer stopProfiles()
	backend, err := bcsearch.ParseBackend(cfg.backend)
	if err != nil {
		return err
	}
	tenants, err := parseTenants(cfg.tenants)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.SearchBackend = backend
	opts.ParallelLookups = cfg.parallel
	opts.AutoParallelLookups = cfg.autoParallel

	var faults *faultinject.Plan
	if cfg.faults != "" {
		faults, err = faultinject.Parse(cfg.faults)
		if err != nil {
			return err
		}
	}
	var store *service.BundleStore
	if cfg.storeBudget >= 0 && cfg.nodes == 0 {
		store = service.NewBundleStore(cfg.storeBudget)
		// The corpus-wide shard-level dedup layer: bundles of successive
		// app versions (and of apps sharing SDK dexes) share postings
		// payloads instead of duplicating them per fingerprint.
		store.AttachShardStore(service.NewShardStore())
	}
	var jnl *journal.Journal
	if cfg.journalDir != "" {
		j, _, err := journal.Open(cfg.journalDir)
		if err != nil {
			return err
		}
		jnl = j
		defer jnl.Close()
	}
	var reports *service.ReportStore
	if cfg.reportBudget >= 0 {
		reports = service.NewReportStore(cfg.reportBudget)
		if jnl != nil {
			// The journal's persistent report section: settled reports
			// survive restarts, so a resubmission of yesterday's corpus
			// is answered without touching the engine.
			reports.AttachJournal(jnl)
			reports.Recover()
		}
	}
	var trace *obs.Trace
	if cfg.trace != "" {
		trace = obs.NewTrace()
	}
	d := api.NewDispatcher(api.DispatcherConfig{
		Scheduler: service.Config{
			Workers:       cfg.workers,
			QueueDepth:    cfg.queue,
			Tenants:       tenants,
			Options:       &opts,
			IndexCacheDir: cfg.indexCache,
			Store:         store,
			Journal:       jnl,
			Reports:       reports,
			// Fleet mode: -store-budget becomes each node's partition
			// budget (the shared store above is not built).
			Nodes:           cfg.nodes,
			NodeStoreBudget: cfg.storeBudget,
			Faults:          faults,
			Trace:           trace,
		},
	})

	// One writer goroutine serializes event lines against command
	// responses (both print through mu).
	var mu sync.Mutex
	printf := func(format string, args ...any) {
		mu.Lock()
		fmt.Fprintf(out, format, args...)
		mu.Unlock()
	}
	sub := d.Subscribe()
	var drain sync.WaitGroup
	drain.Add(1)
	go func() {
		defer drain.Done()
		for {
			ev, ok := sub.Next()
			if !ok {
				return
			}
			printf("%s", api.EventLine(ev, cfg.stats))
		}
	}()

	if cfg.httpAddr != "" {
		ln, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			d.Close()
			drain.Wait()
			return err
		}
		srv := &http.Server{Handler: api.NewHandler(d)}
		go srv.Serve(ln)
		defer srv.Close()
		printf("http addr=%s\n", ln.Addr())
	}

	// Startup replay: re-enqueue the queue the previous process died
	// with. The replayed jobs stream queued/started/... events exactly
	// like fresh submits, under their original ids.
	if jnl != nil {
		rec, _ := d.Recover()
		printf("recovered jobs=%d\n", rec.Jobs)
	}

	// Graceful shutdown on SIGTERM: in-flight jobs drain, the event
	// stream (stdout printer and SSE subscribers) receives its final
	// events, the journal is flushed on the deferred Close, and journaled
	// queued jobs replay on the next start. Commands are read on their
	// own goroutine so the loop can select between stdin and the signal.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	defer signal.Stop(sigc)

	type input struct {
		cmd api.Command
		err error // scanner error; delivered with the channel close
		eof bool
	}
	cmds := make(chan input, 1)
	go func() {
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 64*1024), 64*1024)
		for sc.Scan() {
			cmd, err := api.ParseLine(sc.Text())
			if err != nil {
				printf("error: %v\n", err)
				continue
			}
			if cmd.Kind == api.CmdNone {
				continue
			}
			cmds <- input{cmd: cmd}
		}
		cmds <- input{err: sc.Err(), eof: true}
	}()

	abandon := false // die (and SIGTERM): exit without draining the queue
loop:
	for {
		var cmd api.Command
		select {
		case sig := <-sigc:
			printf("signal %v: draining in-flight jobs\n", sig)
			abandon = true
			break loop
		case in := <-cmds:
			if in.eof {
				if in.err != nil {
					d.Close()
					drain.Wait()
					return in.err
				}
				break loop
			}
			cmd = in.cmd
		}
		switch cmd.Kind {
		case api.CmdQuit:
			break loop
		case api.CmdDie:
			if cmd.Node > 0 {
				// Fence one fleet node; the daemon keeps serving.
				if err := d.KillNode(cmd.Node); err != nil {
					printf("error: %v\n", err)
					continue
				}
				printf("node killed node=%d\n", cmd.Node)
				continue
			}
			abandon = true
			break loop
		case api.CmdStats:
			printf("%s", api.StatsLines(d.Stats(api.StatsRequest{})))
		case api.CmdRecover:
			rec, err := d.Recover()
			if err != nil {
				printf("error: %v\n", err)
				continue
			}
			printf("recovered jobs=%d\n", rec.Jobs)
		case api.CmdCancel:
			if _, err := d.Cancel(cmd.Cancel); err != nil {
				printf("error: %v\n", err)
			}
		case api.CmdSubmit:
			if _, err := d.Submit(cmd.Submit); err != nil {
				printf("error: submit %s: %v\n", cmd.Submit.Path, err)
			}
		}
	}

	if abandon {
		// Crash drill (die) and SIGTERM: stop dispatching, finish only
		// the running jobs, abandon the rest of the queue. With a journal
		// the abandoned jobs stay pending on disk and replay on the next
		// start.
		d.Halt()
		drain.Wait()
		return saveTrace(cfg.trace, trace)
	}
	d.Close()
	drain.Wait()
	printf("%s", api.StatsLines(d.Stats(api.StatsRequest{})))
	return saveTrace(cfg.trace, trace)
}

// saveTrace writes the recorded timeline as Chrome trace-event JSON.
// Both exit paths funnel through here, so a crash drill still leaves a
// timeline of everything that ran before the drill.
func saveTrace(path string, trace *obs.Trace) error {
	if trace == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("-trace: %w", err)
	}
	if err := obs.WriteChrome(f, trace); err != nil {
		f.Close()
		return fmt.Errorf("-trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("-trace: %w", err)
	}
	return nil
}
