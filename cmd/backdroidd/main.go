// Command backdroidd is the long-running batch analysis service: a job
// queue over the BackDroid engine with an in-memory content-addressed
// bundle store, so re-analyses of an app the service has already seen
// perform zero disassembly, zero index builds and zero bundle disk I/O.
//
// Usage:
//
//	backdroidd [-workers N] [-queue N] [-store-budget BYTES] [-backend B]
//	           [-index-cache DIR] [-parallel-lookups] [-auto-parallel-lookups]
//	           [-stats]
//
// The service reads commands from stdin, one per line, and streams typed
// events to stdout as jobs progress:
//
//	submit PATH   queue the app container at PATH (a bare PATH works too)
//	cancel ID     cancel a still-queued job
//	stats         print scheduler + bundle store counters
//	quit          drain the queue and exit (EOF does the same)
//
// Events are printed as single lines: "queued"/"started"/"canceled" with
// the job id and app, one "sink" line per resolved sink (final verdict
// included — emitted while the job is still running), and a terminal
// "done" or "failed" line. Submitting the same APK again hits the bundle
// store: the "done" line's store=hit marker and zero disassembled lines
// make the reuse visible.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"backdroid/internal/apk"
	"backdroid/internal/bcsearch"
	"backdroid/internal/core"
	"backdroid/internal/service"
)

// config carries the parsed CLI flags.
type config struct {
	workers      int
	queue        int
	storeBudget  int64
	backend      string
	indexCache   string
	parallel     bool
	autoParallel bool
	stats        bool
}

func main() {
	var cfg config
	flag.IntVar(&cfg.workers, "workers", runtime.NumCPU(), "concurrent job analyses")
	flag.IntVar(&cfg.queue, "queue", 0, "bounded job queue depth (0 = 2x workers)")
	flag.Int64Var(&cfg.storeBudget, "store-budget", 256<<20,
		"in-memory bundle store byte budget (0 = unlimited, -1 = store disabled)")
	flag.StringVar(&cfg.backend, "backend", "sharded", "search backend: indexed, sharded or linear")
	flag.StringVar(&cfg.indexCache, "index-cache", "",
		"directory for persistent dump+index bundles (empty = memory only)")
	flag.BoolVar(&cfg.parallel, "parallel-lookups", false,
		"fan hot-token shard lookups out on the worker pool")
	flag.BoolVar(&cfg.autoParallel, "auto-parallel-lookups", false,
		"derive the hot-token gate from each app's postings distribution")
	flag.BoolVar(&cfg.stats, "stats", true, "append cost counters to done lines")
	flag.Parse()
	if err := serve(os.Stdin, os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "backdroidd:", err)
		os.Exit(1)
	}
}

// serve runs the command loop: it owns the scheduler, forwards stdin
// commands to it, and prints the event stream. Split from main so tests
// drive it with in-memory pipes.
func serve(in io.Reader, out io.Writer, cfg config) error {
	backend, err := bcsearch.ParseBackend(cfg.backend)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.SearchBackend = backend
	opts.ParallelLookups = cfg.parallel
	opts.AutoParallelLookups = cfg.autoParallel

	var store *service.BundleStore
	if cfg.storeBudget >= 0 {
		store = service.NewBundleStore(cfg.storeBudget)
	}
	events := make(chan service.Event, 64)
	sched := service.New(service.Config{
		Workers:       cfg.workers,
		QueueDepth:    cfg.queue,
		Options:       &opts,
		IndexCacheDir: cfg.indexCache,
		Store:         store,
		Events:        events,
	})

	// One writer goroutine serializes event lines against command
	// responses (both print through mu).
	var mu sync.Mutex
	printf := func(format string, args ...any) {
		mu.Lock()
		fmt.Fprintf(out, format, args...)
		mu.Unlock()
	}
	var drain sync.WaitGroup
	drain.Add(1)
	go func() {
		defer drain.Done()
		for ev := range events {
			printEvent(printf, ev, cfg.stats)
			// Terminal events reap the scheduler's retained job state —
			// the event line is this protocol's result delivery, so a
			// long-running service must not accumulate finished reports.
			switch ev.Kind {
			case service.EventDone, service.EventFailed, service.EventCanceled:
				sched.Forget(ev.Job)
			}
		}
	}()

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cmd, arg := line, ""
		if i := strings.IndexByte(line, ' '); i >= 0 {
			cmd, arg = line[:i], strings.TrimSpace(line[i+1:])
		}
		switch cmd {
		case "quit", "exit":
			goto shutdown
		case "stats":
			printf("%s", statsLine(sched))
		case "cancel":
			id, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				printf("error: cancel wants a job id, got %q\n", arg)
				continue
			}
			if !sched.Cancel(service.JobID(id)) {
				printf("error: job %d not cancelable (unknown, running or finished)\n", id)
			}
		case "submit":
			submit(sched, printf, arg)
		default:
			// A bare path is a submit.
			submit(sched, printf, line)
		}
	}
	if err := sc.Err(); err != nil {
		sched.Close()
		close(events)
		drain.Wait()
		return err
	}

shutdown:
	sched.Close()
	close(events)
	drain.Wait()
	printf("%s", statsLine(sched))
	return nil
}

// submit queues one APK path; the file is opened lazily on the worker,
// so a bad path surfaces as a failed event, not a submit error.
func submit(sched *service.Scheduler, printf func(string, ...any), path string) {
	if path == "" {
		printf("error: submit wants a path\n")
		return
	}
	name := strings.TrimSuffix(path[strings.LastIndexByte(path, '/')+1:], ".apk")
	_, err := sched.Submit(service.Job{
		Name:         name,
		Source:       func() (*apk.App, error) { return apk.Load(path) },
		RunBackDroid: true,
	})
	if err != nil {
		printf("error: submit %s: %v\n", path, err)
	}
}

// printEvent renders one scheduler event as a stable single line. Sink
// and done lines carry the deterministic detection fields first, so
// diffing two submissions of the same app checks reuse end to end.
func printEvent(printf func(string, ...any), ev service.Event, stats bool) {
	switch ev.Kind {
	case service.EventSink:
		s := ev.Sink
		printf("sink id=%d app=%s sink=%s caller=%s reachable=%v insecure=%v values=%v\n",
			ev.Job, ev.Name, s.Call.Sink.Method.SootSignature(),
			s.Call.Caller.SootSignature(), s.Reachable, s.Insecure, s.Values)
	case service.EventDone:
		r := ev.Result.BackDroid
		line := fmt.Sprintf("done id=%d app=%s sinks=%d insecure=%d",
			ev.Job, ev.Name, len(r.Sinks), len(r.InsecureSinks()))
		if stats {
			st := r.Stats
			storeState := "off"
			switch {
			case st.BundleStoreHits > 0:
				storeState = "hit"
			case st.BundleStoreMisses > 0:
				storeState = "miss"
			}
			line += fmt.Sprintf(" units=%d store=%s disassembled=%d builds=%d memo=%d",
				st.WorkUnits, storeState, st.DumpLinesDisassembled,
				st.Search.IndexBuilds, st.ForwardMemoHits)
		}
		printf("%s\n", line)
	case service.EventFailed:
		printf("failed id=%d app=%s err=%v\n", ev.Job, ev.Name, ev.Err)
	default:
		printf("%s id=%d app=%s\n", ev.Kind, ev.Job, ev.Name)
	}
}

// statsLine renders the scheduler and store counters.
func statsLine(sched *service.Scheduler) string {
	store := sched.Store()
	if store == nil {
		return "stats store=disabled\n"
	}
	st := store.Stats()
	return fmt.Sprintf("stats store entries=%d bytes=%d hits=%d misses=%d puts=%d evictions=%d\n",
		st.Entries, st.Bytes, st.Hits, st.Misses, st.Puts, st.Evictions)
}
