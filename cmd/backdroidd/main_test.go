package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"

	"backdroid/internal/testapps"
)

func fixturePath(t *testing.T) string {
	t.Helper()
	app, err := testapps.Fixture()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), app.Name+".apk")
	if err := app.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func serveLines(t *testing.T, script string, cfg config) []string {
	t.Helper()
	var out bytes.Buffer
	if err := serve(strings.NewReader(script), &out, cfg); err != nil {
		t.Fatalf("serve: %v\noutput:\n%s", err, out.String())
	}
	return strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
}

// grepLines returns the lines matching the pattern.
func grepLines(lines []string, pattern string) []string {
	re := regexp.MustCompile(pattern)
	var out []string
	for _, l := range lines {
		if re.MatchString(l) {
			out = append(out, l)
		}
	}
	return out
}

// TestServeWarmResubmission drives the full service loop: the same app
// submitted twice must stream identical sink verdicts, with the second
// job a bundle-store hit (zero disassembly, zero builds).
func TestServeWarmResubmission(t *testing.T) {
	path := fixturePath(t)
	script := fmt.Sprintf("submit %s\nsubmit %s\nstats\nquit\n", path, path)
	lines := serveLines(t, script, config{workers: 1, storeBudget: 0, backend: "sharded", stats: true})

	for _, kind := range []string{"queued", "started", "done"} {
		if got := len(grepLines(lines, "^"+kind+" ")); got != 2 {
			t.Fatalf("%d %q lines, want 2:\n%s", got, kind, strings.Join(lines, "\n"))
		}
	}
	// Sink streams of the two jobs must be identical once the job id is
	// stripped — the store must not change one verdict.
	strip := func(ls []string) string {
		out := ""
		for _, l := range ls {
			out += regexp.MustCompile(`id=\d+ `).ReplaceAllString(l, "") + "\n"
		}
		return out
	}
	first := grepLines(lines, `^sink id=1 `)
	second := grepLines(lines, `^sink id=2 `)
	if len(first) == 0 {
		t.Fatalf("no sink events streamed:\n%s", strings.Join(lines, "\n"))
	}
	if strip(first) != strip(second) {
		t.Fatalf("warm resubmission changed the sink stream:\n%s\nvs\n%s", strip(first), strip(second))
	}

	done1 := grepLines(lines, `^done id=1 `)
	done2 := grepLines(lines, `^done id=2 `)
	if len(done1) != 1 || len(done2) != 1 {
		t.Fatalf("missing done lines:\n%s", strings.Join(lines, "\n"))
	}
	if !strings.Contains(done1[0], "store=miss") {
		t.Fatalf("first done line should be a store miss: %s", done1[0])
	}
	if !strings.Contains(done2[0], "store=hit") || !strings.Contains(done2[0], "disassembled=0") ||
		!strings.Contains(done2[0], "builds=0") {
		t.Fatalf("second done line should be a fully-warm hit: %s", done2[0])
	}
	if got := grepLines(lines, `^stats store entries=1 `); len(got) == 0 {
		t.Fatalf("stats line missing the store entry:\n%s", strings.Join(lines, "\n"))
	}
}

// TestServeBadPathFailsJobOnly pins failure isolation: a bad path fails
// its own job; the service keeps running and analyzes the next one.
func TestServeBadPathFailsJobOnly(t *testing.T) {
	path := fixturePath(t)
	script := fmt.Sprintf("submit /nonexistent/x.apk\nsubmit %s\nquit\n", path)
	lines := serveLines(t, script, config{workers: 1, storeBudget: -1, backend: "indexed", stats: false})
	if got := grepLines(lines, `^failed id=1 `); len(got) != 1 {
		t.Fatalf("bad path did not fail job 1:\n%s", strings.Join(lines, "\n"))
	}
	if got := grepLines(lines, `^done id=2 `); len(got) != 1 {
		t.Fatalf("good job after a failure did not finish:\n%s", strings.Join(lines, "\n"))
	}
	if got := grepLines(lines, `^stats store=disabled`); len(got) == 0 {
		t.Fatalf("disabled store must report as such:\n%s", strings.Join(lines, "\n"))
	}
}

// TestServeCommandErrors pins the protocol's error replies.
func TestServeCommandErrors(t *testing.T) {
	lines := serveLines(t, "cancel notanumber\ncancel 42\nsubmit\nquit\n",
		config{workers: 1, storeBudget: -1, backend: "indexed"})
	for _, want := range []string{
		`^error: cancel wants a job id`,
		`^error: job 42 not cancelable`,
		`^error: submit wants a path`,
	} {
		if got := grepLines(lines, want); len(got) != 1 {
			t.Fatalf("missing %q reply:\n%s", want, strings.Join(lines, "\n"))
		}
	}
}

// TestServeUnknownBackend pins flag validation.
func TestServeUnknownBackend(t *testing.T) {
	var out bytes.Buffer
	if err := serve(strings.NewReader("quit\n"), &out, config{backend: "bogus"}); err == nil {
		t.Fatal("unknown backend must fail")
	}
}

// resultLines filters the protocol's result delivery lines — per-sink
// verdicts and terminal outcomes. Queueing lifecycle lines (queued/
// started) are excluded: a replayed job legitimately re-announces itself
// on the next life, while its results must be delivered exactly once
// across lives.
func resultLines(lines []string) []string {
	return grepLines(lines, `^(sink|done|failed|canceled) `)
}

// TestServeTenantSubmitAndStats drives the multi-tenant protocol: jobs
// submitted under tenants appear in per-tenant stats lines with dispatch
// counters.
func TestServeTenantSubmitAndStats(t *testing.T) {
	path := fixturePath(t)
	script := fmt.Sprintf("submit tenant=acme %s\nsubmit tenant=free %s\nsubmit %s\nquit\n", path, path, path)
	lines := serveLines(t, script, config{workers: 1, storeBudget: 0, backend: "sharded", tenants: "acme=3", stats: true})
	if got := len(grepLines(lines, `^done `)); got != 3 {
		t.Fatalf("%d done lines, want 3:\n%s", got, strings.Join(lines, "\n"))
	}
	for _, want := range []string{
		`^stats tenant name=acme weight=3 queued=0 submitted=1 dispatched=1 `,
		`^stats tenant name=free weight=1 queued=0 submitted=1 dispatched=1 `,
		`^stats tenant name=default weight=1 queued=0 submitted=1 dispatched=1 `,
	} {
		if got := grepLines(lines, want); len(got) != 1 {
			t.Fatalf("missing %q:\n%s", want, strings.Join(lines, "\n"))
		}
	}
}

// TestServeBadTenantsFlag pins -tenants validation.
func TestServeBadTenantsFlag(t *testing.T) {
	var out bytes.Buffer
	if err := serve(strings.NewReader("quit\n"), &out, config{backend: "indexed", tenants: "acme"}); err == nil {
		t.Fatal("malformed -tenants must fail")
	}
	if err := serve(strings.NewReader("quit\n"), &out, config{backend: "indexed", tenants: "acme=0"}); err == nil {
		t.Fatal("zero weight must fail")
	}
}

// TestServeCrashRecoveryParity is the kill-and-recover drill in-process:
// a journaled service dies mid-queue, a second service over the same
// journal replays the abandoned jobs, and the union of the two lives'
// event lines equals an uninterrupted run's — same ids, same sink
// verdicts, same done lines.
func TestServeCrashRecoveryParity(t *testing.T) {
	path := fixturePath(t)
	jdir := t.TempDir()
	cfg := config{workers: 1, storeBudget: -1, backend: "sharded", stats: true}

	// Reference: uninterrupted run over its own journal.
	refCfg := cfg
	refCfg.journalDir = t.TempDir()
	script := fmt.Sprintf("submit %s\nsubmit tenant=acme %s\nsubmit %s\nquit\n", path, path, path)
	want := resultLines(serveLines(t, script, refCfg))
	sort.Strings(want)

	// Life 1: same submissions, then die without draining.
	crashCfg := cfg
	crashCfg.journalDir = jdir
	crashScript := fmt.Sprintf("submit %s\nsubmit tenant=acme %s\nsubmit %s\ndie\n", path, path, path)
	life1 := serveLines(t, crashScript, crashCfg)

	// Life 2: restart over the journal; the startup replay re-enqueues
	// the abandoned jobs under their original ids.
	life2 := serveLines(t, "quit\n", crashCfg)
	if got := grepLines(life2, `^recovered jobs=`); len(got) != 1 {
		t.Fatalf("no startup recovery line:\n%s", strings.Join(life2, "\n"))
	}

	got := append(resultLines(life1), resultLines(life2)...)
	sort.Strings(got)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("crash+recover results diverge from uninterrupted run:\n--- got ---\n%s\n--- want ---\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}

	// Third life: nothing left to replay, and stats expose the journal.
	life3 := serveLines(t, "recover\nstats\nquit\n", crashCfg)
	if got := grepLines(life3, `^recovered jobs=0`); len(got) != 2 {
		t.Fatalf("drained journal must recover 0 jobs (startup + explicit):\n%s", strings.Join(life3, "\n"))
	}
	if got := grepLines(life3, `^stats journal records=\d+ bytes=\d+ pending=0 `); len(got) == 0 {
		t.Fatalf("missing journal stats line:\n%s", strings.Join(life3, "\n"))
	}
}

// TestServeRecoverWithoutJournal pins the protocol error.
func TestServeRecoverWithoutJournal(t *testing.T) {
	lines := serveLines(t, "recover\nquit\n", config{workers: 1, storeBudget: -1, backend: "indexed"})
	if got := grepLines(lines, `^error: no journal configured`); len(got) != 1 {
		t.Fatalf("missing recover error:\n%s", strings.Join(lines, "\n"))
	}
}

// notifyWriter collects serve output and closes signal the first time
// the pattern appears in it — the test's way to order an external event
// (a SIGTERM) after an observable point in the stream.
type notifyWriter struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	pattern *regexp.Regexp
	signal  chan struct{}
	fired   bool
}

func (w *notifyWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.buf.Write(p)
	if !w.fired && w.pattern.MatchString(w.buf.String()) {
		w.fired = true
		close(w.signal)
	}
	return n, err
}

func (w *notifyWriter) lines() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return strings.Split(strings.TrimRight(w.buf.String(), "\n"), "\n")
}

// TestServeSIGTERMDrainsInFlight pins the graceful-shutdown contract: on
// SIGTERM the daemon announces the drain, finishes the jobs already
// running (their result lines still stream), abandons the rest of the
// queue to the journal, and exits cleanly; a restart over the same
// journal replays the abandoned jobs so the union of both lives equals
// an uninterrupted run.
func TestServeSIGTERMDrainsInFlight(t *testing.T) {
	path := fixturePath(t)
	cfg := config{workers: 1, storeBudget: -1, backend: "sharded", stats: true}

	// Reference: the same three submissions, uninterrupted.
	refCfg := cfg
	refCfg.journalDir = t.TempDir()
	script := fmt.Sprintf("submit %s\nsubmit %s\nsubmit %s\nquit\n", path, path, path)
	want := resultLines(serveLines(t, script, refCfg))
	sort.Strings(want)

	// Life 1: submit three jobs on one worker, then SIGTERM once the
	// first done line proves the queue is mid-corpus. The signal handler
	// inside serve catches the signal, so the test process survives.
	sigCfg := cfg
	sigCfg.journalDir = t.TempDir()
	w := &notifyWriter{pattern: regexp.MustCompile(`(?m)^done id=1 `), signal: make(chan struct{})}
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- serve(pr, w, sigCfg) }()
	if _, err := fmt.Fprintf(pw, "submit %s\nsubmit %s\nsubmit %s\n", path, path, path); err != nil {
		t.Fatal(err)
	}
	<-w.signal
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("serve after SIGTERM: %v", err)
	}
	pw.Close()
	life1 := w.lines()
	if got := grepLines(life1, `^signal terminated: draining in-flight jobs$`); len(got) != 1 {
		t.Fatalf("missing drain announcement:\n%s", strings.Join(life1, "\n"))
	}

	// Life 2: the abandoned jobs replay; the union across lives matches
	// the uninterrupted reference.
	life2 := serveLines(t, "quit\n", sigCfg)
	if got := grepLines(life2, `^recovered jobs=`); len(got) != 1 {
		t.Fatalf("no startup recovery line:\n%s", strings.Join(life2, "\n"))
	}
	got := append(resultLines(life1), resultLines(life2)...)
	sort.Strings(got)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("SIGTERM+restart results diverge from uninterrupted run:\n--- got ---\n%s\n--- want ---\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestServeDieNode drives the per-node crash drill over the stdin
// protocol: with -nodes, `die node=N` fences one node and the daemon
// keeps serving — the submitted job lands on the survivor, whose id the
// started line carries, and the fleet stats lines expose the kill.
func TestServeDieNode(t *testing.T) {
	path := fixturePath(t)
	script := fmt.Sprintf("die node=1\ndie node=1\ndie node=9\nsubmit %s\nstats\nquit\n", path)
	lines := serveLines(t, script, config{workers: 1, nodes: 2, storeBudget: 0, backend: "sharded", stats: true})
	if got := grepLines(lines, `^node killed node=1$`); len(got) != 1 {
		t.Fatalf("missing kill confirmation:\n%s", strings.Join(lines, "\n"))
	}
	if got := grepLines(lines, `^error: service: node 1 already dead$`); len(got) != 1 {
		t.Fatalf("double kill must error:\n%s", strings.Join(lines, "\n"))
	}
	if got := grepLines(lines, `^error: service: node 9 out of range `); len(got) != 1 {
		t.Fatalf("out-of-range kill must error:\n%s", strings.Join(lines, "\n"))
	}
	if got := grepLines(lines, `^started id=1 app=\S+ node=2 attempt=1$`); len(got) != 1 {
		t.Fatalf("job must start on the surviving node:\n%s", strings.Join(lines, "\n"))
	}
	if got := grepLines(lines, `^done id=1 `); len(got) != 1 {
		t.Fatalf("job must finish on the survivor:\n%s", strings.Join(lines, "\n"))
	}
	if got := grepLines(lines, `^stats fleet nodes=2 live=1 killed=1 `); len(got) != 2 {
		t.Fatalf("fleet stats must show the kill (stats command + exit stats):\n%s", strings.Join(lines, "\n"))
	}
	if got := grepLines(lines, `^stats node id=1 state=dead `); len(got) != 2 {
		t.Fatalf("per-node stats must show node 1 dead:\n%s", strings.Join(lines, "\n"))
	}
}

// TestServeDieNodeWithoutFleet pins the protocol error.
func TestServeDieNodeWithoutFleet(t *testing.T) {
	lines := serveLines(t, "die node=1\nquit\n", config{workers: 1, storeBudget: -1, backend: "indexed"})
	if got := grepLines(lines, `^error: service: no fleet configured `); len(got) != 1 {
		t.Fatalf("missing no-fleet error:\n%s", strings.Join(lines, "\n"))
	}
}
