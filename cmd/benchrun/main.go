// Command benchrun regenerates every table and figure of the paper's
// evaluation and prints them with paper-vs-measured annotations. The
// results also land in EXPERIMENTS.md.
//
// Usage:
//
//	benchrun [-apps N] [-scale F] [-seed N] [-exp NAME] [-backend B] [-workers W]
//	         [-shards N] [-index-cache DIR] [-parallel-lookups]
//
// where NAME is one of: table1, fig1, fig7, fig8, fig9, headline,
// detection, cachestats, clinit, all (default); B selects the bytecode
// search backend (indexed, the default; sharded for per-dex index shards;
// or linear for the paper-faithful full-scan ablation); and W bounds how
// many apps are analyzed concurrently (default: all CPUs; results are
// identical for any W). -index-cache persists per-app dump+index bundles
// in DIR so repeated corpus runs skip disassembly and tokenization
// entirely; -parallel-lookups fans hot-token shard lookups out on the
// worker pool (sharded backend, identical results).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"backdroid/internal/appgen"
	"backdroid/internal/bcsearch"
	"backdroid/internal/core"
	"backdroid/internal/experiments"
)

func main() {
	var (
		apps       = flag.Int("apps", 144, "corpus size")
		scale      = flag.Float64("scale", 1.0, "app size scale factor")
		seed       = flag.Int64("seed", 20200523, "corpus seed")
		exp        = flag.String("exp", "all", "experiment to run")
		backend    = flag.String("backend", "indexed", "search backend: indexed, sharded or linear")
		workers    = flag.Int("workers", runtime.NumCPU(), "concurrent app analyses (results are worker-count independent)")
		shards     = flag.Int("shards", 0, "index shard count for -backend sharded (0 = auto)")
		indexCache = flag.String("index-cache", "", "directory for persistent dump+index bundles")
		parallel   = flag.Bool("parallel-lookups", false, "fan hot-token shard lookups out on the worker pool")
		autoPar    = flag.Bool("auto-parallel-lookups", false, "derive the hot-token gate from each app's postings distribution")
		quiet      = flag.Bool("q", false, "suppress per-app progress")
	)
	flag.Parse()
	if err := run(*apps, *scale, *seed, *exp, *backend, *workers, *shards, *indexCache, *parallel, *autoPar, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
}

func run(apps int, scale float64, seed int64, exp, backend string, workers, shards int, indexCache string, parallelLookups, autoParallel bool, quiet bool) error {
	if exp == "table1" {
		fmt.Print(experiments.Table1(seed).Render())
		return nil
	}

	kind, err := bcsearch.ParseBackend(backend)
	if err != nil {
		return err
	}
	bdOpts := core.DefaultOptions()
	bdOpts.SearchBackend = kind
	bdOpts.IndexShards = shards
	bdOpts.ParallelLookups = parallelLookups
	bdOpts.AutoParallelLookups = autoParallel

	opts := appgen.CorpusOptions{Apps: apps, Seed: seed, SizeScale: scale}
	cfg := experiments.RunConfig{
		RunBackDroid:     true,
		RunWholeApp:      exp == "all" || exp == "fig8" || exp == "headline" || exp == "detection",
		RunCallGraph:     exp == "all" || exp == "fig1" || exp == "headline",
		BackDroidOptions: &bdOpts,
		Workers:          workers,
		IndexCacheDir:    indexCache,
	}
	if !quiet {
		cfg.Progress = os.Stderr
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating and analyzing %d apps (scale %.2f, %s backend, %d workers)...\n",
		apps, scale, kind, workers)
	corpus, err := experiments.RunCorpus(opts, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "corpus run finished in %v\n", time.Since(start))

	show := func(name string, render func() string) {
		if exp == "all" || exp == name {
			fmt.Println(render())
		}
	}
	show("table1", func() string { return experiments.Table1(seed).Render() })
	show("fig1", func() string { return experiments.Fig1(corpus).Render() })
	show("fig7", func() string { return experiments.Fig7(corpus).Render() })
	show("fig8", func() string { return experiments.Fig8(corpus).Render() })
	show("fig9", func() string { return experiments.Fig9(corpus).Render() })
	show("headline", func() string { return experiments.Headline(corpus).Render() })
	show("detection", func() string { return experiments.Detection(corpus).Render() })
	show("cachestats", func() string { return experiments.CacheStats(corpus).Render() })
	show("clinit", func() string { return experiments.ClinitCheck(corpus).Render() })
	return nil
}
