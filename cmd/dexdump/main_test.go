package main

import (
	"path/filepath"
	"testing"

	"backdroid/internal/testapps"
)

func TestRunDisassembles(t *testing.T) {
	app, err := testapps.Fixture()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), app.Name+".apk")
	if err := app.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := run(path); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/nonexistent/x.apk"); err == nil {
		t.Error("missing file must fail")
	}
}
