// Command dexdump disassembles an app container's (merged) dex bytecode
// into the searchable plaintext that BackDroid greps.
//
// Usage:
//
//	dexdump app.apk
package main

import (
	"flag"
	"fmt"
	"os"

	"backdroid/internal/apk"
	"backdroid/internal/dexdump"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dexdump app.apk")
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "dexdump:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	app, err := apk.Load(path)
	if err != nil {
		return err
	}
	merged, err := app.MergedDex()
	if err != nil {
		return err
	}
	fmt.Print(dexdump.Disassemble(merged).String())
	return nil
}
